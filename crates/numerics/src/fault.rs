//! Deterministic fault injection for the solver pipeline (test-only).
//!
//! Compiled only with the `fault-inject` feature, this module lets tests
//! force solver failures at chosen call counts so the resilience layer in
//! `nvp-core` (backend retry, Monte Carlo fallback, degraded reporting) can
//! be exercised deterministically:
//!
//! * [`FaultMode::ConvergenceFailure`] — the solver reports failure
//!   immediately (singular matrix for dense solves, no-convergence for
//!   power iteration),
//! * [`FaultMode::NanPoison`] — the solver's result vector is poisoned with
//!   a NaN *before* the probability guard runs, exercising the guard path,
//! * [`FaultMode::IterationExhaustion`] — the solver reports that it burned
//!   its entire iteration budget without converging,
//! * [`FaultMode::Panic`] — the worker thread panics at the site, exercising
//!   the `catch_unwind` supervision layer in `nvp-mrgp`/`nvp-core`,
//! * [`FaultMode::Stall`] — the site sleeps for [`STALL_MS`] milliseconds and
//!   then proceeds normally, exercising the worker-rejuvenation watchdog.
//!
//! A plan is armed process-globally with [`arm`]; the returned [`FaultGuard`]
//! disarms it on drop and also holds a process-wide lock so concurrently
//! running `#[test]`s that inject faults serialize instead of trampling each
//! other's plans. Standalone binaries (the `nvp` CLI) can arm a plan from
//! the `NVP_FAULT_INJECT` environment variable via [`arm_from_env`].
//!
//! # Example
//!
//! ```
//! use nvp_numerics::fault::{arm, FaultMode, FaultPlan, Site};
//!
//! let _guard = arm(FaultPlan::new(Site::Any, FaultMode::ConvergenceFailure));
//! // ... every stationary solve now fails until `_guard` is dropped ...
//! ```

use std::sync::{Mutex, MutexGuard, PoisonError};

/// How an intercepted solver call should fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail immediately as if the solve could not converge at all.
    ConvergenceFailure,
    /// Poison the result vector with a NaN so the stage-boundary guard
    /// must catch it.
    NanPoison,
    /// Fail as if the full iteration budget was spent without converging.
    IterationExhaustion,
    /// Panic on the calling (worker) thread. [`intercept`] itself raises the
    /// panic, so sites never observe this variant; the supervision layer
    /// upstream must catch it.
    Panic,
    /// Sleep for [`STALL_MS`] milliseconds, then proceed normally. Handled
    /// inside [`intercept`] (sites never observe this variant); used to make
    /// a solve overstay a watchdog deadline deterministically.
    Stall,
    /// Fail the site's I/O operation (persistent-store read or write). The
    /// engine must degrade the operation to a cache miss / skipped save,
    /// never an error surfaced to the caller.
    Io,
    /// Corrupt the site's on-disk artifact (persistent-store record) so the
    /// checksum-verify-quarantine machinery runs against real damage.
    Corrupt,
}

/// How long a [`FaultMode::Stall`] injection sleeps before letting the call
/// proceed.
pub const STALL_MS: u64 = 50;

/// Which solver entry point a plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Dense LU stationary solves (`ctmc::steady_state_dense`,
    /// `dtmc::stationary_dense`).
    DenseStationary,
    /// Damped power iteration (`sparse::stationary_power`).
    PowerIteration,
    /// Uniformized transient solves (`ctmc::Ctmc::transient`) — the
    /// subordinated-chain work the MRGP row stage runs on worker threads.
    SubordinatedTransient,
    /// Persistent solve-store record writes (the engine's save path).
    StoreWrite,
    /// Persistent solve-store record reads (the engine's load path).
    StoreRead,
    /// The serve daemon's job-worker entry point, *outside* the engine's
    /// own panic isolation — a `panic` here fails the whole job, which is
    /// what the flight-recorder postmortem drills need to force.
    ServeJob,
    /// Every interceptable site.
    Any,
}

/// A fault-injection plan: which site to target, how to fail, and at which
/// call counts. Calls matching `site` are counted; calls with index in
/// `[skip, skip + hits)` fault, the rest proceed normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Solver entry point(s) to intercept.
    pub site: Site,
    /// Failure mode injected at matching calls.
    pub mode: FaultMode,
    /// Number of matching calls to let through before faulting.
    pub skip: usize,
    /// Number of matching calls to fault once triggering starts.
    pub hits: usize,
}

impl FaultPlan {
    /// A plan that faults every matching call from the first one on.
    pub fn new(site: Site, mode: FaultMode) -> Self {
        FaultPlan {
            site,
            mode,
            skip: 0,
            hits: usize::MAX,
        }
    }

    /// Returns this plan letting the first `skip` matching calls through.
    pub fn after(mut self, skip: usize) -> Self {
        self.skip = skip;
        self
    }

    /// Returns this plan faulting at most `hits` matching calls.
    pub fn times(mut self, hits: usize) -> Self {
        self.hits = hits;
        self
    }
}

struct Active {
    plan: FaultPlan,
    calls: usize,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);
static SERIAL: Mutex<()> = Mutex::new(());

fn active() -> MutexGuard<'static, Option<Active>> {
    ACTIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Keeps a fault plan armed; dropping it disarms the plan and releases the
/// process-wide serialization lock taken by [`arm`].
#[must_use = "the plan is disarmed as soon as the guard is dropped"]
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for FaultGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultGuard").finish_non_exhaustive()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *active() = None;
    }
}

/// Arms `plan` process-globally and returns a guard that disarms it on drop.
///
/// Blocks until any previously armed plan's guard has been dropped, so
/// concurrent fault-injecting tests serialize.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    *active() = Some(Active { plan, calls: 0 });
    FaultGuard { _serial: serial }
}

/// Arms a plan described by the `NVP_FAULT_INJECT` environment variable, if
/// set. Intended for the `nvp` binary so integration tests can inject faults
/// across a process boundary.
///
/// Format: `mode@site[:skip[:hits]]` with modes `noconverge`, `nan`,
/// `exhaust`, `panic`, `stall`, `io`, `corrupt` and sites `dense`, `power`,
/// `transient`, `store-write`, `store-read`, `serve-job`, `any`; `skip` and
/// `hits`
/// default to `0` and unlimited. Examples: `noconverge@any`, `nan@dense:1:2`,
/// `panic@transient:0:1`, `io@store-write`, `corrupt@store-read:0:1`.
///
/// Returns `None` (arming nothing) when the variable is unset or malformed.
pub fn arm_from_env() -> Option<FaultGuard> {
    let spec = std::env::var("NVP_FAULT_INJECT").ok()?;
    let plan = parse_plan(&spec)?;
    Some(arm(plan))
}

fn parse_plan(spec: &str) -> Option<FaultPlan> {
    let (mode, rest) = spec.split_once('@')?;
    let mode = match mode {
        "noconverge" => FaultMode::ConvergenceFailure,
        "nan" => FaultMode::NanPoison,
        "exhaust" => FaultMode::IterationExhaustion,
        "panic" => FaultMode::Panic,
        "stall" => FaultMode::Stall,
        "io" => FaultMode::Io,
        "corrupt" => FaultMode::Corrupt,
        _ => return None,
    };
    let mut parts = rest.split(':');
    let site = match parts.next()? {
        "dense" => Site::DenseStationary,
        "power" => Site::PowerIteration,
        "transient" => Site::SubordinatedTransient,
        "store-write" => Site::StoreWrite,
        "store-read" => Site::StoreRead,
        "serve-job" => Site::ServeJob,
        "any" => Site::Any,
        _ => return None,
    };
    let skip = match parts.next() {
        Some(s) => s.parse().ok()?,
        None => 0,
    };
    let hits = match parts.next() {
        Some(s) => s.parse().ok()?,
        None => usize::MAX,
    };
    Some(FaultPlan {
        site,
        mode,
        skip,
        hits,
    })
}

/// Called by solver entry points: returns the failure mode to inject at this
/// call, or `None` to proceed normally.
///
/// [`FaultMode::Panic`] and [`FaultMode::Stall`] are handled here — a panic
/// is raised (after releasing the plan lock) and a stall sleeps for
/// [`STALL_MS`] before proceeding — so sites only ever observe the three
/// error-shaped modes.
pub(crate) fn intercept(site: Site) -> Option<FaultMode> {
    let mode = {
        let mut guard = active();
        let active = guard.as_mut()?;
        if active.plan.site != Site::Any && active.plan.site != site {
            return None;
        }
        let index = active.calls;
        active.calls += 1;
        let lo = active.plan.skip;
        let hi = lo.saturating_add(active.plan.hits);
        if index >= lo && index < hi {
            active.plan.mode
        } else {
            return None;
        }
    };
    nvp_obs::trace::event_with("fault_injected", || {
        vec![
            ("site", format!("{site:?}").into()),
            ("mode", format!("{mode:?}").into()),
        ]
    });
    match mode {
        FaultMode::Panic => panic!("fault-inject: injected panic at {site:?}"),
        FaultMode::Stall => {
            std::thread::sleep(std::time::Duration::from_millis(STALL_MS));
            None
        }
        other => Some(other),
    }
}

/// Public interception point for sites that live outside this crate (the
/// persistent solve-store hooks in `nvp-core`). Identical semantics to the
/// crate-internal solver sites: returns the failure mode to inject at this
/// call, or `None` to proceed normally; `Panic` and `Stall` are handled
/// internally.
pub fn check(site: Site) -> Option<FaultMode> {
    intercept(site)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_by_default() {
        let _serial = arm(FaultPlan::new(Site::Any, FaultMode::NanPoison).times(0));
        assert_eq!(intercept(Site::DenseStationary), None);
    }

    #[test]
    fn skip_and_hits_window_is_respected() {
        let _guard = arm(
            FaultPlan::new(Site::PowerIteration, FaultMode::ConvergenceFailure)
                .after(1)
                .times(2),
        );
        assert_eq!(intercept(Site::PowerIteration), None);
        assert_eq!(
            intercept(Site::PowerIteration),
            Some(FaultMode::ConvergenceFailure)
        );
        assert_eq!(
            intercept(Site::PowerIteration),
            Some(FaultMode::ConvergenceFailure)
        );
        assert_eq!(intercept(Site::PowerIteration), None);
    }

    #[test]
    fn site_filter_only_counts_matching_calls() {
        let _guard = arm(FaultPlan::new(Site::DenseStationary, FaultMode::NanPoison).times(1));
        assert_eq!(intercept(Site::PowerIteration), None);
        assert_eq!(intercept(Site::DenseStationary), Some(FaultMode::NanPoison));
        assert_eq!(intercept(Site::DenseStationary), None);
    }

    #[test]
    fn dropping_the_guard_disarms() {
        {
            let _guard = arm(FaultPlan::new(Site::Any, FaultMode::IterationExhaustion));
            assert!(intercept(Site::DenseStationary).is_some());
        }
        let _serial = arm(FaultPlan::new(Site::Any, FaultMode::NanPoison).times(0));
        assert_eq!(intercept(Site::DenseStationary), None);
    }

    #[test]
    fn env_spec_parses_all_fields() {
        assert_eq!(
            parse_plan("noconverge@any"),
            Some(FaultPlan::new(Site::Any, FaultMode::ConvergenceFailure))
        );
        assert_eq!(
            parse_plan("nan@dense:1:2"),
            Some(
                FaultPlan::new(Site::DenseStationary, FaultMode::NanPoison)
                    .after(1)
                    .times(2)
            )
        );
        assert_eq!(
            parse_plan("exhaust@power:3"),
            Some(FaultPlan::new(Site::PowerIteration, FaultMode::IterationExhaustion).after(3))
        );
        assert_eq!(
            parse_plan("nan@transient"),
            Some(FaultPlan::new(
                Site::SubordinatedTransient,
                FaultMode::NanPoison
            ))
        );
        assert_eq!(parse_plan("bogus@any"), None);
        assert_eq!(parse_plan("nan@nowhere"), None);
        assert_eq!(parse_plan("nan"), None);
    }

    #[test]
    fn env_spec_parses_panic_and_stall_modes() {
        assert_eq!(
            parse_plan("panic@transient:0:1"),
            Some(
                FaultPlan::new(Site::SubordinatedTransient, FaultMode::Panic)
                    .after(0)
                    .times(1)
            )
        );
        assert_eq!(
            parse_plan("stall@any"),
            Some(FaultPlan::new(Site::Any, FaultMode::Stall))
        );
    }

    #[test]
    fn env_spec_parses_store_sites_and_modes() {
        assert_eq!(
            parse_plan("io@store-write"),
            Some(FaultPlan::new(Site::StoreWrite, FaultMode::Io))
        );
        assert_eq!(
            parse_plan("corrupt@store-read:0:1"),
            Some(
                FaultPlan::new(Site::StoreRead, FaultMode::Corrupt)
                    .after(0)
                    .times(1)
            )
        );
        assert_eq!(parse_plan("io@store"), None);
    }

    #[test]
    fn store_sites_are_reachable_through_the_public_check() {
        let _guard = arm(FaultPlan::new(Site::StoreWrite, FaultMode::Io).times(1));
        // A store-read call must not consume the store-write plan.
        assert_eq!(check(Site::StoreRead), None);
        assert_eq!(check(Site::StoreWrite), Some(FaultMode::Io));
        assert_eq!(check(Site::StoreWrite), None);
    }

    #[test]
    fn panic_mode_panics_inside_intercept_without_poisoning_the_plan() {
        let _guard = arm(FaultPlan::new(Site::DenseStationary, FaultMode::Panic).times(1));
        let unwound = std::panic::catch_unwind(|| intercept(Site::DenseStationary));
        assert!(unwound.is_err());
        // The plan lock was released before panicking and the single hit was
        // consumed, so subsequent calls proceed normally.
        assert_eq!(intercept(Site::DenseStationary), None);
    }

    #[test]
    fn stall_mode_sleeps_then_proceeds() {
        let _guard = arm(FaultPlan::new(Site::PowerIteration, FaultMode::Stall).times(1));
        let start = std::time::Instant::now();
        assert_eq!(intercept(Site::PowerIteration), None);
        assert!(start.elapsed() >= std::time::Duration::from_millis(STALL_MS));
        let start = std::time::Instant::now();
        assert_eq!(intercept(Site::PowerIteration), None);
        assert!(start.elapsed() < std::time::Duration::from_millis(STALL_MS));
    }
}
