//! Compressed sparse row (CSR) matrices and iterative solvers.
//!
//! Reachability graphs of larger DSPNs (e.g. the generic N-version models
//! with N ≥ 8 that `nvp-core` supports as an extension) produce sparse
//! generators. This module provides a CSR representation built from triplets,
//! matrix-vector products in both orientations, and the iterative machinery
//! (power iteration, Jacobi/Gauss–Seidel sweeps) used when direct dense
//! factorization would be wasteful.

use crate::budget::SolveBudget;
use crate::guard::{guard_probability_vector, DENSE_RENORMALIZATION_LIMIT};
use crate::{NumericsError, Result, DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE};

/// How many power-iteration steps run between wall-clock budget checks.
const BUDGET_CHECK_INTERVAL: usize = 256;

/// A sparse matrix in compressed sparse row format.
///
/// Build one incrementally through [`CsrBuilder`]:
///
/// ```
/// use nvp_numerics::sparse::CsrBuilder;
///
/// let mut b = CsrBuilder::new(2, 2);
/// b.push(0, 1, 3.0);
/// b.push(1, 0, 4.0);
/// let m = b.build();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Incremental builder for [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicate `(row, col)` entries are
/// summed when the matrix is built.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CsrBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrBuilder {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Records `value` at `(row, col)`. Duplicates are summed at build time.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Finalizes the builder into a [`CsrMatrix`].
    ///
    /// Duplicate `(row, col)` triplets are summed; groups that cancel to
    /// exactly `0.0` are dropped entirely, matching the zero filtering
    /// [`CsrBuilder::push`] applies to individual entries — an explicit
    /// stored zero would inflate `nnz` and cost a multiply in every kernel.
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        let mut i = 0;
        while let Some(&(r, c, first)) = self.triplets.get(i) {
            // Sorted order guarantees duplicates are adjacent; accumulate
            // the whole group before deciding whether it survives.
            let mut v = first;
            i += 1;
            while let Some(&(r2, c2, v2)) = self.triplets.get(i) {
                if (r2, c2) != (r, c) {
                    break;
                }
                v += v2;
                i += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of `row` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Computes `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Computes `A · x` into a caller-owned buffer, overwriting `y`.
    ///
    /// The in-place twin of [`CsrMatrix::matvec`] (bit-identical result):
    /// iterative kernels call this with a reused scratch buffer so a product
    /// per step stops costing an allocation per step.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        assert_eq!(y.len(), self.rows, "output buffer mismatch in matvec_into");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
    }

    /// Computes `xᵀ · A` (row vector times matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.vecmat_into(x, &mut y);
        y
    }

    /// Computes `xᵀ · A` into a caller-owned buffer, overwriting `y`.
    ///
    /// The in-place twin of [`CsrMatrix::vecmat`] (bit-identical result);
    /// power iteration and uniformization drive their whole series through
    /// two ping-pong buffers instead of allocating a fresh vector per step.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn vecmat_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vecmat");
        assert_eq!(y.len(), self.cols, "output buffer mismatch in vecmat_into");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                y[c] += xr * v;
            }
        }
    }

    /// Converts to a dense matrix (for small systems or debugging).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                d.add(r, c, v);
            }
        }
        d
    }
}

/// Fused scaled accumulation `y[i] += a · x[i]`.
///
/// The one-pass kernel behind uniformization's weighted series: folding each
/// Poisson term into the running result touches `y` exactly once, with no
/// temporary for `a · x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "dimension mismatch in axpy");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Finds the stationary row vector of a stochastic matrix `P` (i.e. `π P = π`,
/// `Σ π = 1`) by power iteration.
///
/// `p` must be row-stochastic. Convergence is declared when the L1 change
/// between successive iterates drops below `tol`.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] if `p` is not square.
/// * [`NumericsError::NoConvergence`] if the iteration budget is exhausted —
///   this typically means the chain is periodic; callers should fall back to a
///   direct solve.
pub fn stationary_power(p: &CsrMatrix, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
    stationary_power_with(p, tol, max_iter, &SolveBudget::unlimited())
}

/// [`stationary_power`] with a [`SolveBudget`]: the wall-clock deadline is
/// checked every few hundred iterations so a runaway solve on a huge or
/// pathological chain stops cleanly.
///
/// # Errors
///
/// As [`stationary_power`], plus:
///
/// * [`NumericsError::BudgetExceeded`] when the budget's deadline passes,
/// * [`NumericsError::InvalidProbabilities`] if the iterate degenerates into
///   non-finite values (e.g. NaN poisoning upstream).
pub fn stationary_power_with(
    p: &CsrMatrix,
    tol: f64,
    max_iter: usize,
    budget: &SolveBudget,
) -> Result<Vec<f64>> {
    if p.rows() != p.cols() {
        return Err(NumericsError::DimensionMismatch {
            expected: "square matrix".into(),
            actual: format!("{}x{}", p.rows(), p.cols()),
        });
    }
    let n = p.rows();
    if n == 0 {
        return Err(NumericsError::NoSteadyState {
            reason: "empty chain".into(),
        });
    }
    budget.check("power iteration")?;
    #[cfg(feature = "fault-inject")]
    let poison = match crate::fault::intercept(crate::fault::Site::PowerIteration) {
        Some(crate::fault::FaultMode::ConvergenceFailure) => {
            return Err(NumericsError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            });
        }
        Some(crate::fault::FaultMode::IterationExhaustion) => {
            return Err(NumericsError::NoConvergence {
                iterations: max_iter,
                residual: f64::INFINITY,
            });
        }
        Some(crate::fault::FaultMode::NanPoison) => true,
        // Panic and Stall are handled inside `intercept` and never returned.
        _ => false,
    };
    let mut pi = vec![1.0 / n as f64; n];
    #[cfg(feature = "fault-inject")]
    if poison {
        pi[0] = f64::NAN;
    }
    let mut diff = f64::INFINITY;
    // Ping-pong between `pi` and one scratch buffer: every iteration is a
    // vecmat_into plus in-place damping, with zero per-step allocations.
    // The arithmetic (and therefore the iterate sequence) is bit-identical
    // to the historical allocating loop.
    let mut next = vec![0.0; n];
    for iter in 0..max_iter {
        if iter % BUDGET_CHECK_INTERVAL == 0 {
            budget.check("power iteration")?;
        }
        p.vecmat_into(&pi, &mut next);
        // Damped iteration avoids stalling on periodic chains.
        for (nx, old) in next.iter_mut().zip(&pi) {
            *nx = 0.5 * *nx + 0.5 * old;
        }
        let sum: f64 = next.iter().sum();
        if !sum.is_finite() {
            return Err(NumericsError::InvalidProbabilities {
                what: "power-iteration iterate",
                reason: format!("iterate mass is {sum} at iteration {iter}"),
            });
        }
        if sum <= 0.0 {
            return Err(NumericsError::NoSteadyState {
                reason: "iterate collapsed to zero".into(),
            });
        }
        for v in &mut next {
            *v /= sum;
        }
        diff = next
            .iter()
            .zip(&pi)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
        std::mem::swap(&mut pi, &mut next);
        if diff < tol {
            guard_probability_vector(
                &mut pi,
                "power-iteration stationary vector",
                DENSE_RENORMALIZATION_LIMIT,
            )?;
            return Ok(pi);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
        residual: diff,
    })
}

/// Convenience wrapper around [`stationary_power`] with default tolerances.
///
/// # Errors
///
/// See [`stationary_power`].
pub fn stationary(p: &CsrMatrix) -> Result<Vec<f64>> {
    stationary_power(p, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_chain() -> CsrMatrix {
        // P = [[0.9, 0.1], [0.5, 0.5]] -> pi = (5/6, 1/6)
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, 0.9);
        b.push(0, 1, 0.1);
        b.push(1, 0, 0.5);
        b.push(1, 1, 0.5);
        b.build()
    }

    #[test]
    fn builder_sums_duplicates() {
        let mut b = CsrBuilder::new(1, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.matvec(&[0.0, 1.0]), vec![3.5]);
    }

    #[test]
    fn builder_ignores_explicit_zeros() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, 0.0);
        b.push(1, 1, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
    }

    /// Regression: duplicate triplets that sum to exactly 0.0 used to
    /// survive as an explicit stored zero, contradicting `push`'s zero
    /// filtering and inflating `nnz`.
    #[test]
    fn cancelling_duplicates_are_stripped() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, -1.0);
        let m = b.build();
        assert_eq!(m.nnz(), 0, "cancelled entries must not be stored");
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![0.0, 0.0]);

        // A cancelled group must not shift later entries into the wrong row.
        let mut b = CsrBuilder::new(3, 3);
        b.push(0, 0, 2.0);
        b.push(1, 1, 1.0);
        b.push(1, 1, -1.0);
        b.push(2, 2, 3.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_entries(1).count(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![2.0, 0.0, 3.0]);
    }

    #[test]
    fn into_kernels_match_allocating_kernels() {
        let m = two_state_chain();
        let x = [0.3, 0.7];
        let mut y = vec![f64::NAN; 2]; // stale contents must be overwritten
        m.matvec_into(&x, &mut y);
        assert_eq!(y, m.matvec(&x));
        let mut y = vec![f64::NAN; 2];
        m.vecmat_into(&x, &mut y);
        assert_eq!(y, m.vecmat(&x));
    }

    #[test]
    fn axpy_accumulates_in_place() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(&mut y, 0.5, &[2.0, 4.0, 6.0]);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch in axpy")]
    fn axpy_rejects_length_mismatch() {
        let mut y = vec![0.0; 2];
        axpy(&mut y, 1.0, &[1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = two_state_chain();
        let d = m.to_dense();
        let x = [0.3, 0.7];
        let ys = m.matvec(&x);
        let yd = d.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn vecmat_matches_dense_transpose() {
        let m = two_state_chain();
        let d = m.to_dense().transpose();
        let x = [0.3, 0.7];
        let ys = m.vecmat(&x);
        let yd = d.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn stationary_of_two_state_chain() {
        let m = two_state_chain();
        let pi = stationary(&m).unwrap();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9, "pi = {pi:?}");
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_of_periodic_chain_converges_with_damping() {
        // Pure swap chain: period 2; damping makes power iteration converge
        // to the uniform stationary distribution.
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let m = b.build();
        let pi = stationary(&m).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_rejects_non_square() {
        let b = CsrBuilder::new(2, 3);
        let m = b.build();
        assert!(matches!(
            stationary(&m),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stationary_power_respects_expired_budget() {
        let m = two_state_chain();
        let budget = SolveBudget::with_wall_clock_ms(0);
        assert!(matches!(
            stationary_power_with(&m, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS, &budget),
            Err(NumericsError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn stationary_power_rejects_nan_iterate() {
        // A matrix with a NaN entry poisons the iterate; the solver must
        // report it instead of spinning through the full iteration budget.
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, f64::NAN);
        b.push(0, 1, 0.1);
        b.push(1, 0, 0.5);
        b.push(1, 1, 0.5);
        let m = b.build();
        assert!(matches!(
            stationary_power(&m, DEFAULT_TOLERANCE, 1000),
            Err(NumericsError::InvalidProbabilities { .. })
        ));
    }

    #[test]
    fn row_entries_sorted_by_column() {
        let mut b = CsrBuilder::new(1, 4);
        b.push(0, 3, 1.0);
        b.push(0, 0, 2.0);
        b.push(0, 2, 3.0);
        let m = b.build();
        let cols: Vec<usize> = m.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }
}
