//! Compressed sparse row (CSR) matrices and iterative solvers.
//!
//! Reachability graphs of larger DSPNs (e.g. the generic N-version models
//! with N ≥ 8 that `nvp-core` supports as an extension) produce sparse
//! generators. This module provides a CSR representation built from triplets,
//! matrix-vector products in both orientations, and the iterative machinery
//! (power iteration, Jacobi/Gauss–Seidel sweeps) used when direct dense
//! factorization would be wasteful.

use crate::budget::SolveBudget;
use crate::guard::{guard_probability_vector, DENSE_RENORMALIZATION_LIMIT};
use crate::{NumericsError, Result, DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE};

/// How many power-iteration steps run between wall-clock budget checks.
const BUDGET_CHECK_INTERVAL: usize = 256;

/// A sparse matrix in compressed sparse row format.
///
/// Build one incrementally through [`CsrBuilder`]:
///
/// ```
/// use nvp_numerics::sparse::CsrBuilder;
///
/// let mut b = CsrBuilder::new(2, 2);
/// b.push(0, 1, 3.0);
/// b.push(1, 0, 4.0);
/// let m = b.build();
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Incremental builder for [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicate `(row, col)` entries are
/// summed when the matrix is built.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CsrBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrBuilder {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Records `value` at `(row, col)`. Duplicates are summed at build time.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Finalizes the builder into a [`CsrMatrix`].
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in &self.triplets {
            if last == Some((r, c)) {
                // Sorted order guarantees duplicates are adjacent.
                *values.last_mut().expect("non-empty on duplicate") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of `row` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Computes `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        y
    }

    /// Computes `xᵀ · A` (row vector times matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vecmat");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                y[c] += xr * v;
            }
        }
        y
    }

    /// Converts to a dense matrix (for small systems or debugging).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                d.add(r, c, v);
            }
        }
        d
    }
}

/// Finds the stationary row vector of a stochastic matrix `P` (i.e. `π P = π`,
/// `Σ π = 1`) by power iteration.
///
/// `p` must be row-stochastic. Convergence is declared when the L1 change
/// between successive iterates drops below `tol`.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] if `p` is not square.
/// * [`NumericsError::NoConvergence`] if the iteration budget is exhausted —
///   this typically means the chain is periodic; callers should fall back to a
///   direct solve.
pub fn stationary_power(p: &CsrMatrix, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
    stationary_power_with(p, tol, max_iter, &SolveBudget::unlimited())
}

/// [`stationary_power`] with a [`SolveBudget`]: the wall-clock deadline is
/// checked every few hundred iterations so a runaway solve on a huge or
/// pathological chain stops cleanly.
///
/// # Errors
///
/// As [`stationary_power`], plus:
///
/// * [`NumericsError::BudgetExceeded`] when the budget's deadline passes,
/// * [`NumericsError::InvalidProbabilities`] if the iterate degenerates into
///   non-finite values (e.g. NaN poisoning upstream).
pub fn stationary_power_with(
    p: &CsrMatrix,
    tol: f64,
    max_iter: usize,
    budget: &SolveBudget,
) -> Result<Vec<f64>> {
    if p.rows() != p.cols() {
        return Err(NumericsError::DimensionMismatch {
            expected: "square matrix".into(),
            actual: format!("{}x{}", p.rows(), p.cols()),
        });
    }
    let n = p.rows();
    if n == 0 {
        return Err(NumericsError::NoSteadyState {
            reason: "empty chain".into(),
        });
    }
    budget.check("power iteration")?;
    #[cfg(feature = "fault-inject")]
    let poison = match crate::fault::intercept(crate::fault::Site::PowerIteration) {
        Some(crate::fault::FaultMode::ConvergenceFailure) => {
            return Err(NumericsError::NoConvergence {
                iterations: 0,
                residual: f64::INFINITY,
            });
        }
        Some(crate::fault::FaultMode::IterationExhaustion) => {
            return Err(NumericsError::NoConvergence {
                iterations: max_iter,
                residual: f64::INFINITY,
            });
        }
        Some(crate::fault::FaultMode::NanPoison) => true,
        // Panic and Stall are handled inside `intercept` and never returned.
        _ => false,
    };
    let mut pi = vec![1.0 / n as f64; n];
    #[cfg(feature = "fault-inject")]
    if poison {
        pi[0] = f64::NAN;
    }
    let mut diff = f64::INFINITY;
    for iter in 0..max_iter {
        if iter % BUDGET_CHECK_INTERVAL == 0 {
            budget.check("power iteration")?;
        }
        // Damped iteration avoids stalling on periodic chains.
        let mut next = p.vecmat(&pi);
        for (nx, old) in next.iter_mut().zip(&pi) {
            *nx = 0.5 * *nx + 0.5 * old;
        }
        let sum: f64 = next.iter().sum();
        if !sum.is_finite() {
            return Err(NumericsError::InvalidProbabilities {
                what: "power-iteration iterate",
                reason: format!("iterate mass is {sum} at iteration {iter}"),
            });
        }
        if sum <= 0.0 {
            return Err(NumericsError::NoSteadyState {
                reason: "iterate collapsed to zero".into(),
            });
        }
        for v in &mut next {
            *v /= sum;
        }
        diff = next
            .iter()
            .zip(&pi)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
        pi = next;
        if diff < tol {
            guard_probability_vector(
                &mut pi,
                "power-iteration stationary vector",
                DENSE_RENORMALIZATION_LIMIT,
            )?;
            return Ok(pi);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: max_iter,
        residual: diff,
    })
}

/// Convenience wrapper around [`stationary_power`] with default tolerances.
///
/// # Errors
///
/// See [`stationary_power`].
pub fn stationary(p: &CsrMatrix) -> Result<Vec<f64>> {
    stationary_power(p, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_chain() -> CsrMatrix {
        // P = [[0.9, 0.1], [0.5, 0.5]] -> pi = (5/6, 1/6)
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, 0.9);
        b.push(0, 1, 0.1);
        b.push(1, 0, 0.5);
        b.push(1, 1, 0.5);
        b.build()
    }

    #[test]
    fn builder_sums_duplicates() {
        let mut b = CsrBuilder::new(1, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.matvec(&[0.0, 1.0]), vec![3.5]);
    }

    #[test]
    fn builder_ignores_explicit_zeros() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, 0.0);
        b.push(1, 1, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = two_state_chain();
        let d = m.to_dense();
        let x = [0.3, 0.7];
        let ys = m.matvec(&x);
        let yd = d.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn vecmat_matches_dense_transpose() {
        let m = two_state_chain();
        let d = m.to_dense().transpose();
        let x = [0.3, 0.7];
        let ys = m.vecmat(&x);
        let yd = d.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn stationary_of_two_state_chain() {
        let m = two_state_chain();
        let pi = stationary(&m).unwrap();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9, "pi = {pi:?}");
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_of_periodic_chain_converges_with_damping() {
        // Pure swap chain: period 2; damping makes power iteration converge
        // to the uniform stationary distribution.
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let m = b.build();
        let pi = stationary(&m).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_rejects_non_square() {
        let b = CsrBuilder::new(2, 3);
        let m = b.build();
        assert!(matches!(
            stationary(&m),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stationary_power_respects_expired_budget() {
        let m = two_state_chain();
        let budget = SolveBudget::with_wall_clock_ms(0);
        assert!(matches!(
            stationary_power_with(&m, DEFAULT_TOLERANCE, DEFAULT_MAX_ITERATIONS, &budget),
            Err(NumericsError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn stationary_power_rejects_nan_iterate() {
        // A matrix with a NaN entry poisons the iterate; the solver must
        // report it instead of spinning through the full iteration budget.
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 0, f64::NAN);
        b.push(0, 1, 0.1);
        b.push(1, 0, 0.5);
        b.push(1, 1, 0.5);
        let m = b.build();
        assert!(matches!(
            stationary_power(&m, DEFAULT_TOLERANCE, 1000),
            Err(NumericsError::InvalidProbabilities { .. })
        ));
    }

    #[test]
    fn row_entries_sorted_by_column() {
        let mut b = CsrBuilder::new(1, 4);
        b.push(0, 3, 1.0);
        b.push(0, 0, 2.0);
        b.push(0, 2, 3.0);
        let m = b.build();
        let cols: Vec<usize> = m.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }
}
