//! Resource budgets for long-running solves.
//!
//! A [`SolveBudget`] bounds how much work a solve pipeline may perform:
//! a wall-clock deadline and an optional cap on iterative-solver iterations.
//! Budgets are threaded from `nvp-core`'s analysis engine through
//! reachability exploration (`nvp-petri`), the MRGP solver (`nvp-mrgp`) and
//! the iterative solvers in this crate, so every stage can stop cleanly with
//! a typed [`NumericsError::BudgetExceeded`] instead of running away.
//!
//! The budget is deliberately cheap to consult: [`SolveBudget::check`] is a
//! no-op for unlimited budgets and a single `Instant::now()` comparison
//! otherwise, so callers can afford to check it once per marking expanded or
//! once per block of solver iterations.
//!
//! # Example
//!
//! ```
//! use nvp_numerics::budget::SolveBudget;
//!
//! let unlimited = SolveBudget::unlimited();
//! assert!(unlimited.check("example stage").is_ok());
//!
//! let expired = SolveBudget::with_wall_clock_ms(0);
//! assert!(expired.check("example stage").is_err());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{NumericsError, Result};

/// A bound on the resources a solve pipeline may consume.
///
/// The default budget is unlimited, so existing entry points that do not
/// thread a budget behave exactly as before.
///
/// Besides the deadline and iteration cap, a budget can carry external
/// *cancellation flags* ([`with_cancel`](Self::with_cancel)): a supervisor —
/// e.g. the worker-pool watchdog in [`crate::pool`], or a draining daemon —
/// sets its flag and the next [`check`](Self::check) anywhere in the
/// pipeline fails with [`NumericsError::Cancelled`]. A budget may carry
/// several flags from independent supervisors (a point-lease watchdog *and*
/// an engine-wide drain, say); any one of them set means cancelled. Cloning
/// the budget shares the same flags.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Wall-clock instant after which [`check`](Self::check) fails.
    deadline: Option<Instant>,
    /// The originally configured wall-clock budget, kept for error reporting.
    budget_ms: u64,
    /// Optional cap on iterations for iterative solvers. `None` leaves each
    /// solver's own default in place.
    max_iterations: Option<usize>,
    /// Cooperative cancellation flags set by supervisors; any one set
    /// cancels the solve.
    cancel: Vec<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// A budget that never expires.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// A budget whose wall-clock deadline is `ms` milliseconds from now.
    ///
    /// A budget of `0` ms is already expired and makes the next
    /// [`check`](Self::check) fail — useful for testing budget plumbing
    /// deterministically.
    pub fn with_wall_clock_ms(ms: u64) -> Self {
        SolveBudget {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            budget_ms: ms,
            max_iterations: None,
            cancel: Vec::new(),
        }
    }

    /// Returns this budget with an additional cap on iterative-solver
    /// iterations.
    pub fn and_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = Some(iterations);
        self
    }

    /// Returns this budget additionally carrying `flag` as a cooperative
    /// cancellation flag; once a supervisor stores `true` in it, the next
    /// [`check`](Self::check) fails with [`NumericsError::Cancelled`].
    /// Flags accumulate: a budget may watch several supervisors at once.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel.push(flag);
        self
    }

    /// `true` if no deadline, iteration cap, or cancellation flag is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iterations.is_none() && self.cancel.is_empty()
    }

    /// `true` if a supervisor has set any of this budget's cancellation
    /// flags.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }

    /// The iteration cap to use given a solver's own `default` cap: the
    /// smaller of the two when this budget carries a cap.
    pub fn max_iterations_or(&self, default: usize) -> usize {
        match self.max_iterations {
            Some(cap) => cap.min(default),
            None => default,
        }
    }

    /// Fails with [`NumericsError::BudgetExceeded`] if the wall-clock
    /// deadline has passed. `stage` names the pipeline stage for the error
    /// message (e.g. `"reachability exploration"`).
    ///
    /// # Errors
    ///
    /// [`NumericsError::BudgetExceeded`] when the deadline has passed;
    /// [`NumericsError::Cancelled`] when the cancellation flag is set.
    pub fn check(&self, stage: &'static str) -> Result<()> {
        if self.is_cancelled() {
            // Event emission stays off the happy path: `check` sits inside
            // solver inner loops.
            nvp_obs::trace::event_with("cancelled", || vec![("stage", stage.into())]);
            return Err(NumericsError::Cancelled { stage });
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                nvp_obs::trace::event_with("budget_exceeded", || {
                    vec![
                        ("stage", stage.into()),
                        ("budget_ms", self.budget_ms.into()),
                    ]
                });
                return Err(NumericsError::BudgetExceeded {
                    stage,
                    budget_ms: self.budget_ms,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            assert!(b.check("loop").is_ok());
        }
    }

    #[test]
    fn zero_ms_budget_is_already_expired() {
        let b = SolveBudget::with_wall_clock_ms(0);
        match b.check("stage under test") {
            Err(NumericsError::BudgetExceeded { stage, budget_ms }) => {
                assert_eq!(stage, "stage under test");
                assert_eq!(budget_ms, 0);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_trip_immediately() {
        let b = SolveBudget::with_wall_clock_ms(60_000);
        assert!(b.check("fast stage").is_ok());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn cancellation_flag_trips_check_with_a_typed_error() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = SolveBudget::unlimited().with_cancel(flag.clone());
        assert!(!b.is_unlimited());
        assert!(!b.is_cancelled());
        assert!(b.check("row stage").is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(b.is_cancelled());
        match b.check("row stage") {
            Err(NumericsError::Cancelled { stage }) => assert_eq!(stage, "row stage"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cloned_budgets_share_the_cancellation_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = SolveBudget::with_wall_clock_ms(60_000).with_cancel(flag.clone());
        let b = a.clone();
        flag.store(true, Ordering::Relaxed);
        assert!(a.check("a").is_err());
        assert!(b.check("b").is_err());
    }

    #[test]
    fn any_of_several_cancellation_flags_cancels() {
        // A supervised daemon solve watches both its point-lease watchdog
        // and the engine-wide drain flag; either one must stop it.
        let lease = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let b = SolveBudget::unlimited()
            .with_cancel(lease.clone())
            .with_cancel(drain.clone());
        assert!(b.check("row stage").is_ok());
        drain.store(true, Ordering::Relaxed);
        assert!(b.is_cancelled());
        assert!(matches!(
            b.check("row stage"),
            Err(NumericsError::Cancelled { .. })
        ));
        drain.store(false, Ordering::Relaxed);
        lease.store(true, Ordering::Relaxed);
        assert!(b.is_cancelled());
    }

    #[test]
    fn iteration_cap_tightens_but_never_loosens_defaults() {
        let b = SolveBudget::unlimited().and_max_iterations(100);
        assert_eq!(b.max_iterations_or(200_000), 100);
        assert_eq!(b.max_iterations_or(50), 50);
        assert_eq!(SolveBudget::unlimited().max_iterations_or(123), 123);
    }
}
