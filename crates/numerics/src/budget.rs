//! Resource budgets for long-running solves.
//!
//! A [`SolveBudget`] bounds how much work a solve pipeline may perform:
//! a wall-clock deadline and an optional cap on iterative-solver iterations.
//! Budgets are threaded from `nvp-core`'s analysis engine through
//! reachability exploration (`nvp-petri`), the MRGP solver (`nvp-mrgp`) and
//! the iterative solvers in this crate, so every stage can stop cleanly with
//! a typed [`NumericsError::BudgetExceeded`] instead of running away.
//!
//! The budget is deliberately cheap to consult: [`SolveBudget::check`] is a
//! no-op for unlimited budgets and a single `Instant::now()` comparison
//! otherwise, so callers can afford to check it once per marking expanded or
//! once per block of solver iterations.
//!
//! # Example
//!
//! ```
//! use nvp_numerics::budget::SolveBudget;
//!
//! let unlimited = SolveBudget::unlimited();
//! assert!(unlimited.check("example stage").is_ok());
//!
//! let expired = SolveBudget::with_wall_clock_ms(0);
//! assert!(expired.check("example stage").is_err());
//! ```

use std::time::{Duration, Instant};

use crate::{NumericsError, Result};

/// A bound on the resources a solve pipeline may consume.
///
/// The default budget is unlimited, so existing entry points that do not
/// thread a budget behave exactly as before.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Wall-clock instant after which [`check`](Self::check) fails.
    deadline: Option<Instant>,
    /// The originally configured wall-clock budget, kept for error reporting.
    budget_ms: u64,
    /// Optional cap on iterations for iterative solvers. `None` leaves each
    /// solver's own default in place.
    max_iterations: Option<usize>,
}

impl SolveBudget {
    /// A budget that never expires.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// A budget whose wall-clock deadline is `ms` milliseconds from now.
    ///
    /// A budget of `0` ms is already expired and makes the next
    /// [`check`](Self::check) fail — useful for testing budget plumbing
    /// deterministically.
    pub fn with_wall_clock_ms(ms: u64) -> Self {
        SolveBudget {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            budget_ms: ms,
            max_iterations: None,
        }
    }

    /// Returns this budget with an additional cap on iterative-solver
    /// iterations.
    pub fn and_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = Some(iterations);
        self
    }

    /// `true` if neither a deadline nor an iteration cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iterations.is_none()
    }

    /// The iteration cap to use given a solver's own `default` cap: the
    /// smaller of the two when this budget carries a cap.
    pub fn max_iterations_or(&self, default: usize) -> usize {
        match self.max_iterations {
            Some(cap) => cap.min(default),
            None => default,
        }
    }

    /// Fails with [`NumericsError::BudgetExceeded`] if the wall-clock
    /// deadline has passed. `stage` names the pipeline stage for the error
    /// message (e.g. `"reachability exploration"`).
    ///
    /// # Errors
    ///
    /// [`NumericsError::BudgetExceeded`] when the deadline has passed.
    pub fn check(&self, stage: &'static str) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(NumericsError::BudgetExceeded {
                    stage,
                    budget_ms: self.budget_ms,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            assert!(b.check("loop").is_ok());
        }
    }

    #[test]
    fn zero_ms_budget_is_already_expired() {
        let b = SolveBudget::with_wall_clock_ms(0);
        match b.check("stage under test") {
            Err(NumericsError::BudgetExceeded { stage, budget_ms }) => {
                assert_eq!(stage, "stage under test");
                assert_eq!(budget_ms, 0);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_trip_immediately() {
        let b = SolveBudget::with_wall_clock_ms(60_000);
        assert!(b.check("fast stage").is_ok());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn iteration_cap_tightens_but_never_loosens_defaults() {
        let b = SolveBudget::unlimited().and_max_iterations(100);
        assert_eq!(b.max_iterations_or(200_000), 100);
        assert_eq!(b.max_iterations_or(50), 50);
        assert_eq!(SolveBudget::unlimited().max_iterations_or(123), 123);
    }
}
