//! Probability-vector validation at stage boundaries.
//!
//! Every stage of the analysis pipeline hands probability vectors to the
//! next one: stationary solves feed reward accumulation, embedded-chain
//! solutions feed MRGP conversion, Monte Carlo occupancy estimates feed the
//! degraded reporting path. [`guard_probability_vector`] is the single
//! checkpoint those handoffs go through. It rejects NaN/infinite entries and
//! significantly negative entries, clamps tiny negative rounding noise to
//! zero, and renormalizes the vector — but only within a caller-supplied
//! bound, so a solve that silently lost (or invented) probability mass is
//! reported instead of papered over.
//!
//! # Example
//!
//! ```
//! use nvp_numerics::guard::{guard_probability_vector, DENSE_RENORMALIZATION_LIMIT};
//!
//! let mut pi = vec![0.25, 0.75 - 1e-14, 1e-14];
//! let report = guard_probability_vector(&mut pi, "example", DENSE_RENORMALIZATION_LIMIT).unwrap();
//! assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-15);
//! assert_eq!(report.clamped_negatives, 0);
//! ```

use crate::{NumericsError, Result};

/// Entries more negative than this are reported as errors; entries in
/// `[-NEGATIVE_TOLERANCE, 0)` are treated as rounding noise and clamped to
/// zero. Matches the tolerance historically used by the dense stationary
/// solvers.
pub const NEGATIVE_TOLERANCE: f64 = 1e-9;

/// Renormalization bound for vectors produced by direct (dense) solves,
/// which include the normalization constraint as an equation: the total mass
/// should already be 1 up to rounding, so a larger deviation indicates an
/// ill-conditioned or corrupted solve.
pub const DENSE_RENORMALIZATION_LIMIT: f64 = 1e-6;

/// Renormalization bound for statistically estimated vectors (Monte Carlo
/// occupancy fractions), whose total mass carries sampling noise.
pub const ESTIMATE_RENORMALIZATION_LIMIT: f64 = 1e-3;

/// What [`guard_probability_vector`] had to repair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GuardReport {
    /// Number of slightly negative entries clamped to zero.
    pub clamped_negatives: usize,
    /// Absolute deviation of the pre-normalization mass from one.
    pub mass_deviation: f64,
}

impl GuardReport {
    /// `true` if the guard had to intervene beyond floating-point dust —
    /// i.e. it clamped at least one negative entry or renormalized away a
    /// mass deviation larger than `1e-12`.
    pub fn tripped(&self) -> bool {
        self.clamped_negatives > 0 || self.mass_deviation > 1e-12
    }
}

/// Validates and repairs a probability vector in place.
///
/// Checks, in order:
///
/// 1. the vector is non-empty,
/// 2. every entry is finite (no NaN, no ±∞),
/// 3. no entry is more negative than [`NEGATIVE_TOLERANCE`]; entries in
///    `[-NEGATIVE_TOLERANCE, 0)` are clamped to zero,
/// 4. the total mass is within `max_mass_deviation` of one; if so the vector
///    is renormalized to sum exactly to one.
///
/// `what` names the vector for error messages; `max_mass_deviation` is
/// typically [`DENSE_RENORMALIZATION_LIMIT`] or
/// [`ESTIMATE_RENORMALIZATION_LIMIT`].
///
/// # Errors
///
/// [`NumericsError::InvalidProbabilities`] when any check fails; the vector
/// may have been partially modified (clamped) in that case.
pub fn guard_probability_vector(
    v: &mut [f64],
    what: &'static str,
    max_mass_deviation: f64,
) -> Result<GuardReport> {
    if v.is_empty() {
        return Err(NumericsError::InvalidProbabilities {
            what,
            reason: "vector is empty".into(),
        });
    }
    let mut report = GuardReport::default();
    for (i, x) in v.iter_mut().enumerate() {
        if !x.is_finite() {
            return Err(NumericsError::InvalidProbabilities {
                what,
                reason: format!("entry {i} is {x}"),
            });
        }
        if *x < 0.0 {
            if *x < -NEGATIVE_TOLERANCE {
                return Err(NumericsError::InvalidProbabilities {
                    what,
                    reason: format!("entry {i} is negative ({x:.3e})"),
                });
            }
            *x = 0.0;
            report.clamped_negatives += 1;
        }
    }
    let sum: f64 = v.iter().sum();
    report.mass_deviation = (sum - 1.0).abs();
    if report.mass_deviation > max_mass_deviation {
        return Err(NumericsError::InvalidProbabilities {
            what,
            reason: format!(
                "total mass {sum:.9} deviates from 1 by {:.3e} \
                 (renormalization limit {max_mass_deviation:.1e})",
                report.mass_deviation
            ),
        });
    }
    if sum != 1.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_vector_passes_untouched() {
        let mut v = vec![0.5, 0.5];
        let report = guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT).unwrap();
        assert_eq!(v, vec![0.5, 0.5]);
        assert!(!report.tripped());
    }

    #[test]
    fn nan_entry_is_rejected_not_passed_through() {
        let mut v = vec![0.5, f64::NAN, 0.5];
        let err =
            guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidProbabilities { .. }));
        assert!(err.to_string().contains("entry 1"));
    }

    #[test]
    fn infinite_entry_is_rejected() {
        let mut v = vec![f64::INFINITY, 0.0];
        assert!(matches!(
            guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT),
            Err(NumericsError::InvalidProbabilities { .. })
        ));
    }

    #[test]
    fn tiny_negative_is_clamped_and_counted() {
        let mut v = vec![-1e-12, 1.0];
        let report = guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT).unwrap();
        assert_eq!(v[0], 0.0);
        assert_eq!(report.clamped_negatives, 1);
        assert!(report.tripped());
    }

    #[test]
    fn large_negative_is_an_error() {
        let mut v = vec![-0.1, 1.1];
        assert!(matches!(
            guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT),
            Err(NumericsError::InvalidProbabilities { .. })
        ));
    }

    #[test]
    fn renormalization_is_bounded() {
        // Mass 0.9995 is within the loose (estimate) bound; mass 0.9 is not.
        let mut ok = vec![0.49975, 0.49975];
        let report =
            guard_probability_vector(&mut ok, "test", ESTIMATE_RENORMALIZATION_LIMIT).unwrap();
        assert!((ok.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert!(report.tripped());

        let mut bad = vec![0.45, 0.45];
        assert!(matches!(
            guard_probability_vector(&mut bad, "test", ESTIMATE_RENORMALIZATION_LIMIT),
            Err(NumericsError::InvalidProbabilities { .. })
        ));
    }

    #[test]
    fn empty_vector_is_an_error() {
        let mut v: Vec<f64> = vec![];
        assert!(guard_probability_vector(&mut v, "test", 1e-6).is_err());
    }

    #[test]
    fn dense_bound_rejects_what_estimate_bound_accepts() {
        let mut v = vec![0.4999, 0.4999];
        assert!(guard_probability_vector(&mut v, "test", DENSE_RENORMALIZATION_LIMIT).is_err());
        let mut v = vec![0.4999, 0.4999];
        assert!(guard_probability_vector(&mut v, "test", ESTIMATE_RENORMALIZATION_LIMIT).is_ok());
    }
}
