//! Dense row-major matrices with LU factorization.
//!
//! The matrices arising from the paper's DSPN models are small (the
//! six-version model has a few dozen tangible markings), so a dense direct
//! solver is both the fastest and the most accurate option. The implementation
//! is a classic LU decomposition with partial pivoting (Doolittle scheme).

use crate::{NumericsError, Result};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use nvp_numerics::dense::DenseMatrix;
///
/// # fn main() -> Result<(), nvp_numerics::NumericsError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the rows do not all
    /// have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(NumericsError::DimensionMismatch {
                    expected: format!("row of length {ncols}"),
                    actual: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] += value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Computes the matrix-vector product `A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                actual: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Computes the vector-matrix product `xᵀ · A` (row vector times matrix).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                actual: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (yj, a) in y.iter_mut().zip(row) {
                *yj += xi * a;
            }
        }
        Ok(y)
    }

    /// Computes the matrix product `A · B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("matrix with {} rows", self.cols),
                actual: format!("matrix with {} rows", b.rows),
            });
        }
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c.add(i, j, aik * b.get(k, j));
                }
            }
        }
        Ok(c)
    }

    /// Factorizes the matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the matrix is not
    /// square, or [`NumericsError::SingularMatrix`] if a pivot is numerically
    /// zero.
    pub fn lu(&self) -> Result<LuFactors> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: "square matrix".into(),
                actual: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: choose the row with the largest magnitude.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < f64::EPSILON * 16.0 * (n as f64).max(1.0) {
                return Err(NumericsError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                for c in 0..n {
                    let a = lu.get(col, c);
                    let b = lu.get(pivot_row, c);
                    lu.set(col, c, b);
                    lu.set(pivot_row, c, a);
                }
            }
            let inv_pivot = 1.0 / lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) * inv_pivot;
                lu.set(r, col, factor);
                if factor == 0.0 {
                    continue;
                }
                for c in (col + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(LuFactors { lu, perm })
    }

    /// Solves `A · x = b` via LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DenseMatrix::lu`], and returns
    /// [`NumericsError::DimensionMismatch`] if `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Maximum absolute value of any entry (the max-norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// The result of an LU factorization with partial pivoting: `P·A = L·U`.
///
/// Reuse the factors to solve against multiple right-hand sides cheaply.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A · x = b` using the precomputed factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                actual: format!("vector of length {}", b.len()),
            });
        }
        // Apply the permutation, then forward-substitute (L has unit
        // diagonal), then back-substitute (U).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_known_3x3() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]])
            .unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        match a.solve(&[1.0, 2.0]) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat_are_transposes() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let y = a.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        let z = a.vecmat(&[1.0, 1.0]).unwrap();
        assert_eq!(z, vec![5.0, 7.0, 9.0]);
        let t = a.transpose();
        let z2 = t.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(z, z2);
    }

    #[test]
    fn matmul_against_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
        let b = DenseMatrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[3.0];
        assert!(DenseMatrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn lu_factors_reusable_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        let lu = a.lu().unwrap();
        for b in [[7.0, 9.0], [1.0, 0.0], [0.0, 1.0]] {
            let x = lu.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }
}
