//! Error type shared by all numerics operations.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix or vector had a dimension that does not match the operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        actual: String,
    },
    /// A linear system was singular (or numerically indistinguishable from
    /// singular) and could not be solved.
    SingularMatrix {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// An input value was outside its mathematically valid domain
    /// (e.g. a negative rate or probability).
    InvalidValue {
        /// Name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An index was out of bounds for the structure it addressed.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the indexed structure.
        len: usize,
    },
    /// The chain has no valid steady state (e.g. it is empty or every state
    /// is unreachable/absorbing in a way that prevents normalization).
    NoSteadyState {
        /// Explanation of why the steady state does not exist.
        reason: String,
    },
    /// A bracketing method was called with endpoints that do not bracket a
    /// root (the function has the same sign at both endpoints).
    NoBracket {
        /// Function value at the left endpoint.
        f_lo: f64,
        /// Function value at the right endpoint.
        f_hi: f64,
    },
    /// A resource budget (wall-clock deadline) was exhausted before the
    /// computation finished. See [`crate::budget::SolveBudget`].
    BudgetExceeded {
        /// Pipeline stage that observed the exhausted budget.
        stage: &'static str,
        /// The configured wall-clock budget in milliseconds.
        budget_ms: u64,
    },
    /// The solve was cancelled from outside — typically by the worker-pool
    /// watchdog reclaiming an overdue lease. Unlike
    /// [`BudgetExceeded`](Self::BudgetExceeded), cancellation is initiated by
    /// a supervisor rather than by the solve noticing its own deadline.
    Cancelled {
        /// Pipeline stage that observed the cancellation flag.
        stage: &'static str,
    },
    /// A probability vector failed validation at a stage boundary (NaN or
    /// infinite entries, significantly negative entries, or a total mass too
    /// far from one to renormalize safely). See
    /// [`crate::guard::guard_probability_vector`].
    InvalidProbabilities {
        /// Name of the vector that failed validation.
        what: &'static str,
        /// Explanation of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            NumericsError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            NumericsError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            NumericsError::NoSteadyState { reason } => {
                write!(f, "no steady state: {reason}")
            }
            NumericsError::NoBracket { f_lo, f_hi } => write!(
                f,
                "endpoints do not bracket a root (f(lo) = {f_lo:.3e}, f(hi) = {f_hi:.3e})"
            ),
            NumericsError::BudgetExceeded { stage, budget_ms } => {
                write!(f, "solve budget of {budget_ms} ms exhausted during {stage}")
            }
            NumericsError::Cancelled { stage } => {
                write!(f, "solve cancelled by supervisor during {stage}")
            }
            NumericsError::InvalidProbabilities { what, reason } => {
                write!(f, "invalid probability vector ({what}): {reason}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<NumericsError> = vec![
            NumericsError::DimensionMismatch {
                expected: "3x3".into(),
                actual: "2x3".into(),
            },
            NumericsError::SingularMatrix { pivot: 2 },
            NumericsError::NoConvergence {
                iterations: 100,
                residual: 1e-3,
            },
            NumericsError::InvalidValue {
                what: "rate",
                value: -1.0,
            },
            NumericsError::IndexOutOfBounds { index: 5, len: 3 },
            NumericsError::NoSteadyState {
                reason: "empty chain".into(),
            },
            NumericsError::NoBracket {
                f_lo: 1.0,
                f_hi: 2.0,
            },
            NumericsError::BudgetExceeded {
                stage: "power iteration",
                budget_ms: 250,
            },
            NumericsError::Cancelled {
                stage: "subordinated chain solve",
            },
            NumericsError::InvalidProbabilities {
                what: "stationary vector",
                reason: "entry 3 is NaN".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
