//! A process-wide worker budget for nested parallelism.
//!
//! Two layers of this workspace parallelize independently: the analysis
//! engine fans a sweep's grid points out over threads, and the MRGP solver
//! fans the subordinated-chain rows of a single solve out over threads.
//! Run naively, a parallel sweep of parallel solves would spawn
//! `cores × cores` workers and thrash. Instead, both layers draw *permits*
//! from one [`WorkerPool`] sized to the machine (or to `NVP_JOBS`): a layer
//! that gets no permits simply runs on its calling thread, so nested
//! parallelism degrades to serial instead of oversubscribing.
//!
//! The accounting convention: a permit stands for one **extra** worker
//! thread beyond the calling thread. A pool of capacity `c` therefore hands
//! out at most `c - 1` permits, keeping the total number of working threads
//! at or below `c` no matter how the layers nest (the outer layer's workers
//! each hold a permit; the innermost calling thread is the implicit
//! `+1`).
//!
//! Acquisition is non-blocking by design ([`WorkerPool::try_acquire`]
//! grants *up to* the requested count, possibly zero): a solver thread that
//! waited for permits held by its own parent layer would deadlock.
//!
//! # Example
//!
//! ```
//! use nvp_numerics::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let a = pool.try_acquire(2); // granted 2
//! let b = pool.try_acquire(5); // only 1 left (capacity 4 => 3 permits)
//! assert_eq!(a.count(), 2);
//! assert_eq!(b.count(), 1);
//! drop(a);
//! assert_eq!(pool.available(), 2);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// How many worker threads a parallel stage may use, including the calling
/// thread.
///
/// `Auto` defers to the [`WorkerPool`]'s capacity; `Fixed(n)` asks for
/// exactly `n` (still subject to permit availability, so nesting can only
/// shrink it). `Fixed(1)` — or `Auto` on a one-permit pool — is the strict
/// serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jobs {
    /// Use as many workers as the pool allows.
    #[default]
    Auto,
    /// Use at most this many workers (≥ 1; the calling thread counts).
    Fixed(usize),
}

impl Jobs {
    /// Parses a `--jobs` / `NVP_JOBS` style value: a positive integer, or
    /// `auto`. Returns `None` for anything else (including `0`, which would
    /// mean "no workers at all" — the calling thread always works).
    pub fn parse(s: &str) -> Option<Jobs> {
        if s.eq_ignore_ascii_case("auto") {
            return Some(Jobs::Auto);
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Some(Jobs::Fixed(n)),
            _ => None,
        }
    }

    /// The number of workers this knob asks for when there are `items`
    /// independent pieces of work and the pool's capacity is `capacity`:
    /// never more than one worker per item, never more than the cap.
    pub fn desired_workers(self, items: usize, capacity: usize) -> usize {
        let want = match self {
            Jobs::Auto => capacity,
            Jobs::Fixed(n) => n.max(1),
        };
        want.min(items).max(1)
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Jobs::Auto => f.write_str("auto"),
            Jobs::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// A shared budget of worker permits (see the [module docs](self)).
#[derive(Debug)]
pub struct WorkerPool {
    /// Total worker budget including the implicit calling thread; at most
    /// `capacity - 1` permits are ever outstanding.
    capacity: AtomicUsize,
    /// Permits currently held.
    in_use: AtomicUsize,
    /// High-water mark of `in_use` since the last [`WorkerPool::reset_peak`].
    peak: AtomicUsize,
    /// Requests granted fewer permits than they asked for.
    starvations: AtomicU64,
    /// Outstanding solve leases, keyed by lease id (see [`WorkerPool::lease`]).
    leases: Mutex<HashMap<u64, LeaseEntry>>,
    /// Next lease id to hand out.
    next_lease: AtomicU64,
    /// Leases cancelled by [`WorkerPool::watchdog_sweep`] (lifetime total).
    rejuvenations: AtomicU64,
    /// Poisoned lease-table locks recovered instead of propagated (lifetime
    /// total).
    lock_recoveries: AtomicU64,
}

/// Bookkeeping for one outstanding solve lease.
#[derive(Debug)]
struct LeaseEntry {
    /// Instant past which the watchdog cancels the lease, if any.
    deadline: Option<Instant>,
    /// Cancellation flag shared with the leaseholder's [`SolveBudget`]
    /// (via [`Lease::cancel_token`]).
    ///
    /// [`SolveBudget`]: crate::budget::SolveBudget
    cancel: Arc<AtomicBool>,
}

impl WorkerPool {
    /// A pool with a total worker budget of `capacity` threads (clamped to
    /// at least 1 — the calling thread always exists).
    pub fn new(capacity: usize) -> Self {
        WorkerPool {
            capacity: AtomicUsize::new(capacity.max(1)),
            in_use: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            starvations: AtomicU64::new(0),
            leases: Mutex::new(HashMap::new()),
            next_lease: AtomicU64::new(0),
            rejuvenations: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
        }
    }

    /// The process-wide pool both parallel layers draw from. Sized on first
    /// use from the `NVP_JOBS` environment variable (a positive integer or
    /// `auto`) or, when unset or malformed, from
    /// [`std::thread::available_parallelism`].
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("NVP_JOBS")
                .ok()
                .and_then(|v| match Jobs::parse(&v) {
                    Some(Jobs::Fixed(n)) => Some(n),
                    _ => None,
                })
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            WorkerPool::new(capacity)
        })
    }

    /// Total worker budget (including the implicit calling thread).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Re-sizes the budget (clamped to ≥ 1). Outstanding permits are
    /// unaffected; shrinking below the current usage only stops *further*
    /// grants until permits are released.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity.max(1), Ordering::Relaxed);
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        let cap = self.capacity().saturating_sub(1);
        cap.saturating_sub(self.in_use.load(Ordering::Relaxed))
    }

    /// Permits currently held.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently held permits since the last
    /// [`WorkerPool::reset_peak`]. Peak `p` means at most `p + 1` threads
    /// were ever working at once.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current usage.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.in_use.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Requests granted fewer permits than asked (lifetime total).
    pub fn starvations(&self) -> u64 {
        self.starvations.load(Ordering::Relaxed)
    }

    /// Acquires up to `want` permits without blocking; the grant may be
    /// empty. Dropping the returned [`Permits`] releases them. A grant
    /// smaller than `want` (with `want > 0`) counts as a starvation.
    pub fn try_acquire(&self, want: usize) -> Permits<'_> {
        let mut granted = 0;
        if want > 0 {
            let max_permits = self.capacity().saturating_sub(1);
            let mut current = self.in_use.load(Ordering::Relaxed);
            loop {
                let free = max_permits.saturating_sub(current);
                let take = want.min(free);
                if take == 0 {
                    break;
                }
                match self.in_use.compare_exchange_weak(
                    current,
                    current + take,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        granted = take;
                        self.peak.fetch_max(current + take, Ordering::Relaxed);
                        break;
                    }
                    Err(actual) => current = actual,
                }
            }
            if granted < want {
                self.starvations.fetch_add(1, Ordering::Relaxed);
                nvp_obs::trace::event_with("permit_starvation", || {
                    vec![("wanted", want.into()), ("granted", granted.into())]
                });
            }
        }
        Permits {
            pool: self,
            count: granted,
        }
    }

    /// Locks the lease table, recovering from poisoning (a panicking
    /// leaseholder) instead of propagating the panic process-wide. Every
    /// entry in the table is a plain insert/remove, so a poisoned guard's
    /// contents are still consistent.
    fn lease_table(&self) -> MutexGuard<'_, HashMap<u64, LeaseEntry>> {
        self.leases.lock().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            self.leases.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Registers a solve with the pool's watchdog and returns its [`Lease`].
    ///
    /// A lease with a `deadline` is cancelled — its shared flag set, so the
    /// leaseholder's next budget check fails with
    /// [`NumericsError::Cancelled`](crate::NumericsError::Cancelled) — by the
    /// next [`watchdog_sweep`](Self::watchdog_sweep) after the deadline
    /// elapses. A lease without a deadline is tracked but never cancelled.
    /// Dropping the lease unregisters it.
    pub fn lease(&self, deadline: Option<Duration>) -> Lease<'_> {
        let id = self.next_lease.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let cancel = Arc::new(AtomicBool::new(false));
        self.lease_table().insert(
            id,
            LeaseEntry {
                deadline: deadline.map(|d| started + d),
                cancel: Arc::clone(&cancel),
            },
        );
        Lease {
            pool: self,
            id,
            started,
            cancel,
        }
    }

    /// Number of currently outstanding leases.
    pub fn active_leases(&self) -> usize {
        self.lease_table().len()
    }

    /// Cancels every outstanding lease whose deadline has passed and returns
    /// how many were newly cancelled. Callers normally run this from a
    /// [`start_watchdog`](Self::start_watchdog) thread rather than directly.
    pub fn watchdog_sweep(&self) -> usize {
        let now = Instant::now();
        let mut cancelled = 0;
        for entry in self.lease_table().values() {
            if let Some(deadline) = entry.deadline {
                if now >= deadline && !entry.cancel.swap(true, Ordering::Relaxed) {
                    cancelled += 1;
                }
            }
        }
        if cancelled > 0 {
            self.rejuvenations
                .fetch_add(cancelled as u64, Ordering::Relaxed);
            nvp_obs::trace::event_with("rejuvenation", || {
                vec![("cancelled_leases", cancelled.into())]
            });
        }
        cancelled
    }

    /// Leases cancelled by the watchdog (lifetime total).
    pub fn rejuvenations(&self) -> u64 {
        self.rejuvenations.load(Ordering::Relaxed)
    }

    /// Poisoned lease-table locks recovered instead of propagated (lifetime
    /// total).
    pub fn lock_recoveries(&self) -> u64 {
        self.lock_recoveries.load(Ordering::Relaxed)
    }

    /// Spawns a background watchdog thread that runs
    /// [`watchdog_sweep`](Self::watchdog_sweep) every `period` until the
    /// returned [`Watchdog`] handle is dropped (which stops and joins the
    /// thread). Only available on the `'static` pool —
    /// [`global`](Self::global) — so the thread can never outlive its pool.
    pub fn start_watchdog(&'static self, period: Duration) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("nvp-watchdog".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    self.watchdog_sweep();
                    std::thread::park_timeout(period);
                }
            })
            .expect("failed to spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }
}

/// A registered solve being tracked by the pool's watchdog; unregisters on
/// drop. See [`WorkerPool::lease`].
#[derive(Debug)]
#[must_use = "the lease is unregistered as soon as this is dropped"]
pub struct Lease<'a> {
    pool: &'a WorkerPool,
    id: u64,
    started: Instant,
    cancel: Arc<AtomicBool>,
}

impl Lease<'_> {
    /// How long this lease has been outstanding.
    pub fn age(&self) -> Duration {
        self.started.elapsed()
    }

    /// The cancellation flag shared between this lease and the watchdog;
    /// pass it to [`SolveBudget::with_cancel`] so the leaseholder's solve
    /// observes watchdog cancellation at its next budget check.
    ///
    /// [`SolveBudget::with_cancel`]: crate::budget::SolveBudget::with_cancel
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// `true` once the watchdog has cancelled this lease.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.pool.lease_table().remove(&self.id);
    }
}

/// Handle to a running watchdog thread; dropping it stops and joins the
/// thread. See [`WorkerPool::start_watchdog`].
#[derive(Debug)]
#[must_use = "the watchdog thread stops as soon as this is dropped"]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// A batch of worker permits held against a [`WorkerPool`]; released on
/// drop.
#[derive(Debug)]
#[must_use = "permits are released as soon as this is dropped"]
pub struct Permits<'a> {
    pool: &'a WorkerPool,
    count: usize,
}

impl Permits<'_> {
    /// Number of permits actually granted (may be less than requested,
    /// including zero).
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        if self.count > 0 {
            self.pool.in_use.fetch_sub(self.count, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parse_accepts_auto_and_positive_integers() {
        assert_eq!(Jobs::parse("auto"), Some(Jobs::Auto));
        assert_eq!(Jobs::parse("AUTO"), Some(Jobs::Auto));
        assert_eq!(Jobs::parse("1"), Some(Jobs::Fixed(1)));
        assert_eq!(Jobs::parse("16"), Some(Jobs::Fixed(16)));
        assert_eq!(Jobs::parse("0"), None);
        assert_eq!(Jobs::parse("-2"), None);
        assert_eq!(Jobs::parse("many"), None);
        assert_eq!(Jobs::parse(""), None);
    }

    #[test]
    fn desired_workers_is_bounded_by_items_and_capacity() {
        assert_eq!(Jobs::Auto.desired_workers(100, 8), 8);
        assert_eq!(Jobs::Auto.desired_workers(3, 8), 3);
        assert_eq!(Jobs::Fixed(4).desired_workers(100, 8), 4);
        assert_eq!(Jobs::Fixed(12).desired_workers(100, 8), 12);
        assert_eq!(Jobs::Fixed(1).desired_workers(100, 8), 1);
        // Never zero: the calling thread always works.
        assert_eq!(Jobs::Auto.desired_workers(0, 8), 1);
        assert_eq!(Jobs::Fixed(3).desired_workers(0, 1), 1);
    }

    #[test]
    fn permits_never_exceed_capacity_minus_one() {
        let pool = WorkerPool::new(4);
        let a = pool.try_acquire(10);
        assert_eq!(a.count(), 3, "capacity 4 leaves 3 permits");
        let b = pool.try_acquire(1);
        assert_eq!(b.count(), 0, "pool exhausted");
        drop(a);
        assert_eq!(pool.available(), 3);
        let c = pool.try_acquire(2);
        assert_eq!(c.count(), 2);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn capacity_one_pool_grants_nothing() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.try_acquire(8).count(), 0);
        assert_eq!(pool.available(), 0);
        // Capacity 0 is clamped to 1.
        let pool = WorkerPool::new(0);
        assert_eq!(pool.capacity(), 1);
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let pool = WorkerPool::new(5);
        let a = pool.try_acquire(2);
        assert_eq!(pool.peak(), 2);
        let b = pool.try_acquire(2);
        assert_eq!(pool.peak(), 4);
        drop(b);
        drop(a);
        assert_eq!(pool.peak(), 4, "peak survives release");
        pool.reset_peak();
        assert_eq!(pool.peak(), 0);
        let _c = pool.try_acquire(1);
        assert_eq!(pool.peak(), 1);
    }

    #[test]
    fn short_grants_count_as_starvations() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.starvations(), 0);
        let a = pool.try_acquire(2); // exact: no starvation
        assert_eq!(pool.starvations(), 0);
        let b = pool.try_acquire(2); // nothing left
        assert_eq!(b.count(), 0);
        assert_eq!(pool.starvations(), 1);
        drop(a);
        let c = pool.try_acquire(5); // partial
        assert_eq!(c.count(), 2);
        assert_eq!(pool.starvations(), 2);
        // Asking for nothing is not starvation.
        let d = pool.try_acquire(0);
        assert_eq!(d.count(), 0);
        assert_eq!(pool.starvations(), 2);
    }

    #[test]
    fn shrinking_capacity_blocks_new_grants_only() {
        let pool = WorkerPool::new(4);
        let a = pool.try_acquire(3);
        assert_eq!(a.count(), 3);
        pool.set_capacity(2);
        assert_eq!(pool.try_acquire(1).count(), 0, "over the new cap");
        drop(a);
        assert_eq!(pool.try_acquire(3).count(), 1, "new cap applies");
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        let pool = WorkerPool::global();
        assert!(pool.capacity() >= 1);
    }

    #[test]
    fn leases_register_and_unregister() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.active_leases(), 0);
        let a = pool.lease(None);
        let b = pool.lease(Some(Duration::from_secs(3600)));
        assert_eq!(pool.active_leases(), 2);
        assert!(!a.is_cancelled());
        drop(a);
        drop(b);
        assert_eq!(pool.active_leases(), 0);
    }

    #[test]
    fn watchdog_sweep_cancels_only_overdue_leases() {
        let pool = WorkerPool::new(2);
        let overdue = pool.lease(Some(Duration::from_millis(0)));
        let fresh = pool.lease(Some(Duration::from_secs(3600)));
        let untimed = pool.lease(None);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(pool.watchdog_sweep(), 1);
        assert!(overdue.is_cancelled());
        assert!(overdue.cancel_token().load(Ordering::Relaxed));
        assert!(!fresh.is_cancelled());
        assert!(!untimed.is_cancelled());
        assert_eq!(pool.rejuvenations(), 1);
        // A second sweep does not double-count the already-cancelled lease.
        assert_eq!(pool.watchdog_sweep(), 0);
        assert_eq!(pool.rejuvenations(), 1);
    }

    #[test]
    fn cancelled_lease_trips_a_budget_carrying_its_token() {
        let pool = WorkerPool::new(2);
        let lease = pool.lease(Some(Duration::from_millis(0)));
        let budget = crate::budget::SolveBudget::unlimited().with_cancel(lease.cancel_token());
        assert!(budget.check("before cancellation").is_ok());
        std::thread::sleep(Duration::from_millis(2));
        pool.watchdog_sweep();
        match budget.check("after cancellation") {
            Err(crate::NumericsError::Cancelled { stage }) => {
                assert_eq!(stage, "after cancellation");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn background_watchdog_cancels_an_overdue_lease() {
        // Watchdog requires a 'static pool; leak a dedicated one so the test
        // does not interfere with the global pool's counters.
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool::new(2)));
        let lease = pool.lease(Some(Duration::from_millis(5)));
        let watchdog = pool.start_watchdog(Duration::from_millis(2));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !lease.is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(lease.is_cancelled(), "watchdog never fired");
        drop(watchdog); // stops and joins the thread
        assert!(pool.rejuvenations() >= 1);
    }

    #[test]
    fn poisoned_lease_table_is_recovered_not_propagated() {
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool::new(2)));
        // Poison the lease-table mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(|| {
            let _guard = pool.leases.lock().unwrap();
            panic!("poison the lease table");
        });
        let lease = pool.lease(Some(Duration::from_secs(3600)));
        assert_eq!(pool.active_leases(), 1);
        assert!(pool.lock_recoveries() >= 1);
        drop(lease);
        assert_eq!(pool.active_leases(), 0);
    }
}
