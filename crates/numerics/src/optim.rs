//! Scalar root finding and one-dimensional optimization.
//!
//! The paper's evaluation asks two scalar questions that these routines
//! answer:
//!
//! * *"What rejuvenation interval maximizes expected reliability?"*
//!   (Figure 3) — [`golden_section_max`];
//! * *"At what parameter value do the four- and six-version curves cross?"*
//!   (Figures 4a and 4d) — [`bisect`] / [`brent`] on the difference of the
//!   two reliability functions.

use crate::{NumericsError, Result};

/// Result of a one-dimensional maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Argument at which the maximum was located.
    pub x: f64,
    /// Function value at [`Maximum::x`].
    pub value: f64,
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`NumericsError::InvalidValue`] if the interval is degenerate or not
///   finite.
/// * [`NumericsError::NoBracket`] if `f(lo)` and `f(hi)` have the same sign.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), nvp_numerics::NumericsError> {
/// let root = nvp_numerics::optim::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    check_interval(lo, hi)?;
    let mut lo = lo;
    let mut hi = hi;
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(NumericsError::NoBracket { f_lo, f_hi });
    }
    // 200 halvings reduce any finite interval below f64 resolution.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds a root of `f` in `[lo, hi]` with Brent's method (inverse quadratic
/// interpolation guarded by bisection). Converges much faster than plain
/// bisection on smooth functions.
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    check_interval(lo, hi)?;
    let (mut a, mut b) = (lo, hi);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = c;
    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let bound = (3.0 * a + b) / 4.0;
        let cond1 = s <= bound.min(b) || s >= bound.max(b);
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(b)
}

/// Maximizes a unimodal function on `[lo, hi]` by golden-section search.
///
/// If the function is not unimodal the result is a local maximum.
///
/// # Errors
///
/// [`NumericsError::InvalidValue`] if the interval is degenerate or not
/// finite.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), nvp_numerics::NumericsError> {
/// let m = nvp_numerics::optim::golden_section_max(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-10)?;
/// assert!((m.x - 3.0).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn golden_section_max<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<Maximum> {
    check_interval(lo, hi)?;
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..500 {
        if (b - a).abs() < tol {
            break;
        }
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    Ok(Maximum { x, value: f(x) })
}

fn check_interval(lo: f64, hi: f64) -> Result<()> {
    if !lo.is_finite() {
        return Err(NumericsError::InvalidValue {
            what: "interval lower bound",
            value: lo,
        });
    }
    if !hi.is_finite() || hi <= lo {
        return Err(NumericsError::InvalidValue {
            what: "interval upper bound",
            value: hi,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let root = bisect(|x| x, 0.0, 1.0, 1e-12).unwrap();
        assert_eq!(root, 0.0);
    }

    #[test]
    fn bisect_rejects_unbracketed_interval() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(NumericsError::NoBracket { .. })
        ));
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut calls = 0;
        let root = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-13,
        )
        .unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
        // Pure bisection would need ~46 evaluations for a 2-wide interval at
        // 1e-13 tolerance; Brent's interpolation steps must beat that.
        assert!(calls < 40, "brent took {calls} evaluations");
    }

    #[test]
    fn brent_on_cubic() {
        let root = brent(|x| (x - 1.0) * (x + 4.0) * (x + 9.0), 0.0, 3.0, 1e-13).unwrap();
        assert!((root - 1.0).abs() < 1e-9);
    }

    #[test]
    fn brent_rejects_unbracketed_interval() {
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn golden_section_finds_parabola_peak() {
        let m = golden_section_max(|x| 5.0 - (x - 2.5) * (x - 2.5), 0.0, 10.0, 1e-10).unwrap();
        assert!((m.x - 2.5).abs() < 1e-6);
        assert!((m.value - 5.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_handles_boundary_maximum() {
        let m = golden_section_max(|x| x, 0.0, 1.0, 1e-10).unwrap();
        assert!((m.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_intervals_are_rejected() {
        assert!(bisect(|x| x, 1.0, 1.0, 1e-12).is_err());
        assert!(bisect(|x| x, 2.0, 1.0, 1e-12).is_err());
        assert!(bisect(|x| x, f64::NAN, 1.0, 1e-12).is_err());
        assert!(golden_section_max(|x| x, 1.0, 1.0, 1e-12).is_err());
    }
}
