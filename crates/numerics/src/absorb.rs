//! Absorption analysis of CTMCs: hitting probabilities and expected hitting
//! times.
//!
//! Used by the dependability extensions of `nvp-core`: the *mean time to
//! voting exhaustion* (first entry into a state where the voter can no
//! longer assemble a quorum) is the expected hitting time of that state set.

use crate::ctmc::Ctmc;
use crate::dense::DenseMatrix;
use crate::{NumericsError, Result};

/// Result of an absorption analysis against a target state set.
#[derive(Debug, Clone, PartialEq)]
pub struct Absorption {
    /// `expected_time[s]` is the expected time to reach the target set from
    /// state `s` (`0` for target states, `f64::INFINITY` when the target is
    /// not reached almost surely from `s`).
    pub expected_time: Vec<f64>,
    /// `hit_probability[s]` is the probability of ever reaching the target
    /// set from `s`.
    pub hit_probability: Vec<f64>,
}

/// Computes expected hitting times and hitting probabilities of `targets`.
///
/// States that cannot reach the target at all are identified by backward
/// graph search (hit probability 0, time ∞); on the remaining transient
/// states the standard first-step equations are solved:
/// `(−Q_TT) · h = 1` for times, `(−Q_TT) · w = q_target` for probabilities.
///
/// # Errors
///
/// * [`NumericsError::IndexOutOfBounds`] for a target index out of range.
/// * [`NumericsError::InvalidValue`] if `targets` is empty.
/// * [`NumericsError::SingularMatrix`] from the linear solver (only for
///   numerically degenerate rates).
///
/// # Example
///
/// ```
/// use nvp_numerics::absorb::absorption;
/// use nvp_numerics::ctmc::Ctmc;
///
/// # fn main() -> Result<(), nvp_numerics::NumericsError> {
/// // 0 -> 1 -> 2 with rates 0.5 and 2.0: hitting time 1/0.5 + 1/2.
/// let mut chain = Ctmc::new(3);
/// chain.add_rate(0, 1, 0.5)?;
/// chain.add_rate(1, 2, 2.0)?;
/// let result = absorption(&chain, &[2])?;
/// assert!((result.expected_time[0] - 2.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn absorption(ctmc: &Ctmc, targets: &[usize]) -> Result<Absorption> {
    let n = ctmc.n_states();
    if targets.is_empty() {
        return Err(NumericsError::InvalidValue {
            what: "targets",
            value: 0.0,
        });
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(NumericsError::IndexOutOfBounds { index: t, len: n });
        }
        is_target[t] = true;
    }

    // Backward reachability: which states have a path into the target set?
    let gen = ctmc.generator();
    let mut predecessors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        for (c, v) in gen.row_entries(s) {
            if c != s && v > 0.0 {
                predecessors[c].push(s);
            }
        }
    }
    let mut can_reach = is_target.clone();
    let mut stack: Vec<usize> = targets.to_vec();
    while let Some(s) = stack.pop() {
        for &p in &predecessors[s] {
            if !can_reach[p] {
                can_reach[p] = true;
                stack.push(p);
            }
        }
    }

    // Transient system: non-target states that can reach the target.
    let transient: Vec<usize> = (0..n).filter(|&s| !is_target[s] && can_reach[s]).collect();
    let m = transient.len();
    let mut local = vec![usize::MAX; n];
    for (i, &s) in transient.iter().enumerate() {
        local[s] = i;
    }

    let mut expected_time = vec![f64::INFINITY; n];
    let mut hit_probability = vec![0.0; n];
    for s in 0..n {
        if is_target[s] {
            expected_time[s] = 0.0;
            hit_probability[s] = 1.0;
        }
    }
    if m == 0 {
        return Ok(Absorption {
            expected_time,
            hit_probability,
        });
    }

    // (−Q_TT) over the transient set: transitions into target states feed
    // the probability right-hand side; transitions into never-reaching
    // states leak probability mass (they keep the full exit rate on the
    // diagonal but produce no coupling term).
    let mut a = DenseMatrix::zeros(m, m);
    let mut into_target = vec![0.0; m];
    for (i, &s) in transient.iter().enumerate() {
        for (c, v) in gen.row_entries(s) {
            if c == s {
                a.add(i, i, -v); // −diagonal = total exit rate
            } else if is_target[c] {
                into_target[i] += v;
            } else if can_reach[c] {
                a.add(i, local[c], -v);
            }
        }
    }
    let lu = a.lu()?;
    let w = lu.solve(&into_target)?;
    let h = lu.solve(&vec![1.0; m])?;
    for (i, &s) in transient.iter().enumerate() {
        hit_probability[s] = w[i].clamp(0.0, 1.0);
        // The expected time is finite only when absorption is almost sure.
        expected_time[s] = if w[i] > 1.0 - 1e-9 {
            h[i]
        } else {
            f64::INFINITY
        };
    }
    Ok(Absorption {
        expected_time,
        hit_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pure death chain 0 -> 1 -> 2 with rates a, b: expected hitting time
    /// of state 2 from 0 is 1/a + 1/b.
    #[test]
    fn death_chain_hitting_time() {
        let (a, b) = (0.5, 2.0);
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, a).unwrap();
        c.add_rate(1, 2, b).unwrap();
        let result = absorption(&c, &[2]).unwrap();
        assert!((result.expected_time[0] - (1.0 / a + 1.0 / b)).abs() < 1e-12);
        assert!((result.expected_time[1] - 1.0 / b).abs() < 1e-12);
        assert_eq!(result.expected_time[2], 0.0);
        assert!(result
            .hit_probability
            .iter()
            .all(|&p| (p - 1.0).abs() < 1e-12));
    }

    /// Up → Degraded → Failed with repair Degraded → Up. First-step
    /// analysis: h_up = 1/λ1 + h_deg, h_deg = 1/(λ2+μ) + μ/(λ2+μ)·h_up.
    #[test]
    fn repairable_system_mttf() {
        let (l1, l2, mu) = (0.1, 0.4, 2.0);
        let mut c = Ctmc::new(3); // 0 = Up, 1 = Degraded, 2 = Failed
        c.add_rate(0, 1, l1).unwrap();
        c.add_rate(1, 2, l2).unwrap();
        c.add_rate(1, 0, mu).unwrap();
        let result = absorption(&c, &[2]).unwrap();
        let h_up = (1.0 / l1 + 1.0 / (l2 + mu)) / (1.0 - mu / (l2 + mu));
        assert!(
            (result.expected_time[0] - h_up).abs() < 1e-9,
            "{} vs {h_up}",
            result.expected_time[0]
        );
        assert!(result.expected_time[1] < result.expected_time[0]);
    }

    #[test]
    fn unreachable_target_is_infinite() {
        // 0 <-> 1 closed; target 2 unreachable from them.
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(1, 0, 1.0).unwrap();
        c.add_rate(2, 0, 1.0).unwrap();
        let result = absorption(&c, &[2]).unwrap();
        assert_eq!(result.expected_time[0], f64::INFINITY);
        assert_eq!(result.expected_time[1], f64::INFINITY);
        assert_eq!(result.hit_probability[0], 0.0);
        assert_eq!(result.expected_time[2], 0.0);
    }

    #[test]
    fn competing_absorbers_split_probability() {
        // 0 -> 1 (rate 1) and 0 -> 2 (rate 3); target {1}: hit probability
        // from 0 is 1/4 (state 2 is a trap).
        let mut c = Ctmc::new(3);
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(0, 2, 3.0).unwrap();
        let result = absorption(&c, &[1]).unwrap();
        assert!((result.hit_probability[0] - 0.25).abs() < 1e-12);
        assert_eq!(result.expected_time[0], f64::INFINITY);
        assert_eq!(result.expected_time[2], f64::INFINITY);
        assert_eq!(result.hit_probability[1], 1.0);
    }

    #[test]
    fn detour_through_trap_reduces_probability() {
        // 0 -> 1 -> target(3), but 1 also leaks to trap 2 with equal rate:
        // w(0) = w(1) = 1/2.
        let mut c = Ctmc::new(4);
        c.add_rate(0, 1, 5.0).unwrap();
        c.add_rate(1, 3, 1.0).unwrap();
        c.add_rate(1, 2, 1.0).unwrap();
        let result = absorption(&c, &[3]).unwrap();
        assert!((result.hit_probability[0] - 0.5).abs() < 1e-12);
        assert!((result.hit_probability[1] - 0.5).abs() < 1e-12);
        assert_eq!(result.hit_probability[2], 0.0);
    }

    #[test]
    fn invalid_inputs() {
        let c = Ctmc::new(2);
        assert!(absorption(&c, &[]).is_err());
        assert!(absorption(&c, &[5]).is_err());
    }

    #[test]
    fn all_states_target_is_trivial() {
        let mut c = Ctmc::new(2);
        c.add_rate(0, 1, 1.0).unwrap();
        let result = absorption(&c, &[0, 1]).unwrap();
        assert_eq!(result.expected_time, vec![0.0, 0.0]);
        assert_eq!(result.hit_probability, vec![1.0, 1.0]);
    }
}
