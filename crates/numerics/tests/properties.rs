//! Property-based tests of the numerics crate on randomly generated
//! chains and systems.

use nvp_numerics::ctmc::Ctmc;
use nvp_numerics::dense::DenseMatrix;
use nvp_numerics::poisson::poisson_weights;
use proptest::prelude::*;

/// Strategy: a random irreducible-ish CTMC over `n` states built from a
/// Hamiltonian cycle (guaranteeing irreducibility) plus random extra edges.
fn arb_ctmc() -> impl Strategy<Value = Ctmc> {
    (2usize..7)
        .prop_flat_map(|n| {
            let cycle_rates = prop::collection::vec(0.01..10.0f64, n);
            let extra = prop::collection::vec((0..n, 0..n, 0.01..10.0f64), 0..8);
            (Just(n), cycle_rates, extra)
        })
        .prop_map(|(n, cycle_rates, extra)| {
            let mut c = Ctmc::new(n);
            for (i, &r) in cycle_rates.iter().enumerate() {
                c.add_rate(i, (i + 1) % n, r).unwrap();
            }
            for (from, to, rate) in extra {
                if from != to {
                    c.add_rate(from, to, rate).unwrap();
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The steady state of any irreducible chain is a distribution solving
    /// pi Q = 0.
    #[test]
    fn steady_state_is_stationary_distribution(ctmc in arb_ctmc()) {
        let pi = ctmc.steady_state().unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|&p| p >= 0.0));
        let flow = ctmc.generator().vecmat(&pi);
        for (s, f) in flow.iter().enumerate() {
            prop_assert!(f.abs() < 1e-8, "net flow {f} at state {s}");
        }
    }

    /// Transient distributions conserve probability mass and converge to
    /// the steady state.
    #[test]
    fn transient_conserves_and_converges(ctmc in arb_ctmc(), t in 0.0..50.0f64) {
        let n = ctmc.n_states();
        let mut pi0 = vec![0.0; n];
        pi0[0] = 1.0;
        let pi_t = ctmc.transient(&pi0, t, 1e-12).unwrap();
        prop_assert!((pi_t.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(pi_t.iter().all(|&p| p >= -1e-12));
        // At a long horizon relative to the slowest rate, compare with the
        // stationary vector.
        let pi_inf = ctmc.transient(&pi0, 2000.0, 1e-12).unwrap();
        let stat = ctmc.steady_state().unwrap();
        for (a, b) in pi_inf.iter().zip(&stat) {
            prop_assert!((a - b).abs() < 1e-5, "transient {a} vs stationary {b}");
        }
    }

    /// Accumulated sojourns integrate the transient distribution: they sum
    /// to t and are monotone in t.
    #[test]
    fn accumulated_sojourn_totals_t(ctmc in arb_ctmc(), t in 0.01..20.0f64) {
        let n = ctmc.n_states();
        let mut pi0 = vec![0.0; n];
        pi0[0] = 1.0;
        let l = ctmc.accumulated_sojourn(&pi0, t, 1e-12).unwrap();
        prop_assert!((l.iter().sum::<f64>() - t).abs() < 1e-7 * t.max(1.0));
        let l2 = ctmc.accumulated_sojourn(&pi0, t * 2.0, 1e-12).unwrap();
        for (a, b) in l.iter().zip(&l2) {
            prop_assert!(b + 1e-9 >= *a, "sojourn must grow with t");
        }
    }

    /// LU solves random diagonally dominant systems to small residuals.
    #[test]
    fn lu_solves_diagonally_dominant_systems(
        entries in prop::collection::vec(-1.0..1.0f64, 16),
        rhs in prop::collection::vec(-10.0..10.0f64, 4),
    ) {
        let n = 4;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = entries[i * n + j];
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            a.set(i, i, row_sum + 1.0); // strict diagonal dominance
        }
        let x = a.solve(&rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (b1, b2) in back.iter().zip(&rhs) {
            prop_assert!((b1 - b2).abs() < 1e-9);
        }
    }

    /// Poisson weights always form a (truncated) distribution with small
    /// tail.
    #[test]
    fn poisson_weights_are_distribution(lambda in 0.0..2000.0f64) {
        let w = poisson_weights(lambda, 1e-10).unwrap();
        let total: f64 = w.weights.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        prop_assert!(total >= 1.0 - 1e-6, "lost mass at lambda={lambda}: {total}");
        prop_assert!(w.weights.iter().all(|&x| x >= 0.0));
    }
}
