//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each submodule of [`experiments`] reproduces one artifact of the paper's
//! evaluation (§V) and returns a typed result that can be rendered to CSV
//! (for plotting) and markdown (for `EXPERIMENTS.md`):
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | `table2`   | Table II — default input parameters | [`experiments::table2`] |
//! | `headline` | §V-B first paragraph — E\[R_4v\], E\[R_6v\], ≥13% improvement | [`experiments::headline`] |
//! | `fig3`     | Figure 3 — reliability vs rejuvenation interval | [`experiments::fig3`] |
//! | `fig4a`    | Figure 4(a) — vs mean time to compromise, crossovers | [`experiments::fig4`] |
//! | `fig4b`    | Figure 4(b) — vs error dependency α | [`experiments::fig4`] |
//! | `fig4c`    | Figure 4(c) — vs healthy inaccuracy p | [`experiments::fig4`] |
//! | `fig4d`    | Figure 4(d) — vs compromised inaccuracy p′, crossover | [`experiments::fig4`] |
//! | `xval`     | extension — simulation vs analytic cross-validation | [`experiments::xval`] |
//! | `pipeline` | extension — per-request pipeline vs reliability functions | [`experiments::pipeline`] |
//! | `nsweep`   | extension — generic N sweep | [`experiments::nsweep`] |
//! | `transient`| extension — transient R(t), quorum loss, sensitivities | [`experiments::transient`] |
//! | `weather`  | extension — environment-modulated input difficulty | [`experiments::weather`] |
//! | `tuning`   | extension — optimal interval vs threat level | [`experiments::tuning`] |
//! | `ablations`| extension — reward policy / semantics / Trj / repair budget | [`experiments::ablations`] |
//!
//! The `experiments` binary runs them all and writes `results/*.csv` plus a
//! combined markdown report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

/// Error type of the harness (delegates to the model crates).
pub type BenchError = Box<dyn std::error::Error + Send + Sync>;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, BenchError>;

/// Fidelity of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full resolution, as reported in `EXPERIMENTS.md`.
    Full,
    /// Reduced resolution for criterion benchmarks and smoke tests.
    Quick,
}
