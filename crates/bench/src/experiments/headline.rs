//! §V-B headline numbers: the expected reliability of both systems at the
//! Table II defaults, and the ≥13% improvement claim.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::Result;
use nvp_core::analysis::{expected_reliability, SolverBackend};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;

/// Paper value for the four-version system (§V-B).
pub const PAPER_R4: f64 = 0.8233477;
/// Paper value for the six-version system with rejuvenation (§V-B).
pub const PAPER_R6: f64 = 0.93464665;

/// Computed headline quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineResult {
    /// E\[R_4v\] at the defaults.
    pub r4: f64,
    /// E\[R_6v\] at the defaults.
    pub r6: f64,
    /// Relative improvement `(r6 - r4) / r4`.
    pub improvement: f64,
}

/// Computes the headline quantities.
///
/// # Errors
///
/// Analysis failures.
pub fn compute() -> Result<HeadlineResult> {
    let r4 = expected_reliability(
        &SystemParams::paper_four_version(),
        RewardPolicy::FailedOnly,
        SolverBackend::Auto,
    )?;
    let r6 = expected_reliability(
        &SystemParams::paper_six_version(),
        RewardPolicy::FailedOnly,
        SolverBackend::Auto,
    )?;
    Ok(HeadlineResult {
        r4,
        r6,
        improvement: (r6 - r4) / r4,
    })
}

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis failures.
pub fn run() -> Result<RenderedExperiment> {
    let h = compute()?;
    let claims = vec![
        ClaimCheck {
            claim: "E[R_4v] at defaults".into(),
            paper: format!("{PAPER_R4}"),
            measured: format!("{:.7}", h.r4),
            holds: (h.r4 - PAPER_R4).abs() / PAPER_R4 < 0.005,
        },
        ClaimCheck {
            claim: "E[R_6v] at defaults (with rejuvenation)".into(),
            paper: format!("{PAPER_R6}"),
            measured: format!("{:.7}", h.r6),
            holds: (h.r6 - PAPER_R6).abs() / PAPER_R6 < 0.01,
        },
        ClaimCheck {
            claim: "rejuvenation improves reliability by more than 13%".into(),
            paper: "≈13%".into(),
            measured: format!("{:.2}%", h.improvement * 100.0),
            holds: h.improvement > 0.13,
        },
    ];
    let markdown = format!(
        "{}\nNote: the reproduced E[R_4v] = {:.7} differs from the printed 0.8233477 \
         by 0.12%; the printed value is a near-digit-transposition of ours \
         (see DESIGN.md, calibration of server semantics).\n",
        claims_table(&claims),
        h.r4
    );
    Ok(RenderedExperiment {
        id: "headline",
        title: "§V-B headline — expected reliability at the Table II defaults".into(),
        markdown,
        csv: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold() {
        let r = run().unwrap();
        assert!(
            !r.markdown.contains("❌"),
            "headline claims failed:\n{}",
            r.markdown
        );
    }

    #[test]
    fn computed_values_match_calibration() {
        let h = compute().unwrap();
        assert!((h.r4 - 0.8223487).abs() < 1e-6);
        assert!((h.r6 - 0.9381725).abs() < 1e-6);
        assert!(h.improvement > 0.14);
    }
}
