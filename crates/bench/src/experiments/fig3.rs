//! Figure 3 — influence of the rejuvenation interval `1/γ` on the
//! six-version system's expected reliability.
//!
//! Paper claims: the curve has an interior maximum (the paper locates it at
//! 400–450 s with its numbers; the calibrated reproduction finds it slightly
//! above, at ≈450–550 s) and decreases for larger intervals.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck, NamedSeries, SweepSeries};
use crate::{Fidelity, Result};
use nvp_core::analysis::{linspace, ParamAxis};
use nvp_core::engine::{AnalysisEngine, SolverStats};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;

/// Computed Figure 3 artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// `(1/γ, E[R_6v])` curve.
    pub curve: Vec<(f64, f64)>,
    /// Interval maximizing reliability, and the maximum value.
    pub optimum: (f64, f64),
    /// Engine statistics for the whole experiment (sweep + optimum search):
    /// state-space sizes, chain-cache reuse, per-stage times.
    pub stats: SolverStats,
}

/// Computes the sweep and optimum.
///
/// # Errors
///
/// Analysis failures.
pub fn compute(fidelity: Fidelity) -> Result<Fig3Result> {
    let params = SystemParams::paper_six_version();
    let steps = match fidelity {
        Fidelity::Full => 29, // every 100 s over [200, 3000]
        Fidelity::Quick => 8,
    };
    let grid = linspace(200.0, 3000.0, steps);
    // One engine for the sweep and the optimum search: any interval the
    // golden-section probes revisit comes out of the chain cache.
    let engine = AnalysisEngine::new();
    let curve = engine.sweep_parallel(
        &params,
        ParamAxis::RejuvenationInterval,
        &grid,
        RewardPolicy::FailedOnly,
    )?;
    let optimum =
        engine.optimal_rejuvenation_interval(&params, 200.0, 3000.0, RewardPolicy::FailedOnly)?;
    Ok(Fig3Result {
        curve,
        optimum,
        stats: engine.stats(),
    })
}

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let result = compute(fidelity)?;
    let (opt_x, opt_val) = result.optimum;
    let first = result.curve.first().copied().unwrap_or((0.0, 0.0));
    let last = result.curve.last().copied().unwrap_or((0.0, 0.0));
    let interior = opt_val > first.1 && opt_val > last.1;
    let claims = vec![
        ClaimCheck {
            claim: "reliability has an interior maximum in the rejuvenation interval".into(),
            paper: "maximum at 400–450 s".into(),
            measured: format!("maximum at {opt_x:.0} s (E[R] = {opt_val:.6})"),
            holds: interior && (300.0..=700.0).contains(&opt_x),
        },
        ClaimCheck {
            claim: "increasing the interval beyond the optimum decreases reliability".into(),
            paper: "decreasing towards 3000 s".into(),
            measured: format!("E[R] at 3000 s = {:.6} < optimum {opt_val:.6}", last.1),
            holds: last.1 < opt_val - 0.01,
        },
    ];
    let series = SweepSeries {
        axis_label: "rejuvenation interval 1/gamma [s]".into(),
        value_label: "expected reliability".into(),
        series: vec![NamedSeries {
            name: "six-version with rejuvenation".into(),
            points: result.curve.clone(),
        }],
    };
    let markdown = format!(
        "{}\n{}\nSolver statistics:\n\n```\n{}\n```\n",
        claims_table(&claims),
        series.to_markdown(),
        result.stats
    );
    Ok(RenderedExperiment {
        id: "fig3",
        title: "Figure 3 — reliability vs rejuvenation interval".into(),
        markdown,
        csv: vec![("fig3_gamma_sweep.csv".into(), series.to_csv())],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_has_interior_optimum() {
        let r = compute(Fidelity::Quick).unwrap();
        let (opt_x, opt_val) = r.optimum;
        assert!((300.0..=700.0).contains(&opt_x), "optimum at {opt_x}");
        assert!(opt_val > r.curve.first().unwrap().1);
        assert!(opt_val > r.curve.last().unwrap().1);
    }

    #[test]
    fn fig3_renders_claims_and_csv() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "claims failed:\n{}", r.markdown);
        assert!(r.markdown.contains("Solver statistics"), "{}", r.markdown);
        assert!(r.markdown.contains("chain cache"), "{}", r.markdown);
        assert_eq!(r.csv.len(), 1);
        assert!(r.csv[0].1.lines().count() > 5);
    }

    #[test]
    fn fig3_stats_account_for_every_chain_solve() {
        let r = compute(Fidelity::Quick).unwrap();
        // 8 grid intervals miss; golden-section probes add more distinct
        // intervals but nothing is solved twice.
        assert!(r.stats.cache_misses >= 8, "{:?}", r.stats);
        assert_eq!(
            r.stats.chain_solutions as u64, r.stats.cache_misses,
            "every miss produced exactly one cached solution"
        );
        assert!(r.stats.tangible_markings > 0);
    }
}
