//! One module per reproduced artifact. See the crate docs for the index.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod headline;
pub mod nsweep;
pub mod pipeline;
pub mod table2;
pub mod transient;
pub mod tuning;
pub mod weather;
pub mod xval;

use crate::Fidelity;
use crate::Result;

/// A fully rendered experiment: markdown body plus optional CSV artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedExperiment {
    /// Experiment id (e.g. `fig3`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Markdown body (claims table, data tables, notes).
    pub markdown: String,
    /// `(file name, csv content)` artifacts.
    pub csv: Vec<(String, String)>,
}

/// Runs every experiment at the given fidelity, in report order.
///
/// # Errors
///
/// Propagates the first experiment failure.
pub fn run_all(fidelity: Fidelity) -> Result<Vec<RenderedExperiment>> {
    Ok(vec![
        table2::run()?,
        headline::run()?,
        fig3::run(fidelity)?,
        fig4::run_a(fidelity)?,
        fig4::run_b(fidelity)?,
        fig4::run_c(fidelity)?,
        fig4::run_d(fidelity)?,
        xval::run(fidelity)?,
        transient::run(fidelity)?,
        pipeline::run(fidelity)?,
        weather::run(fidelity)?,
        tuning::run(fidelity)?,
        nsweep::run(fidelity)?,
        ablations::run(fidelity)?,
    ])
}

/// Runs one experiment by id.
///
/// # Errors
///
/// Unknown id or experiment failure.
pub fn run_one(id: &str, fidelity: Fidelity) -> Result<RenderedExperiment> {
    match id {
        "table2" => table2::run(),
        "headline" => headline::run(),
        "fig3" => fig3::run(fidelity),
        "fig4a" => fig4::run_a(fidelity),
        "fig4b" => fig4::run_b(fidelity),
        "fig4c" => fig4::run_c(fidelity),
        "fig4d" => fig4::run_d(fidelity),
        "xval" => xval::run(fidelity),
        "transient" => transient::run(fidelity),
        "pipeline" => pipeline::run(fidelity),
        "weather" => weather::run(fidelity),
        "tuning" => tuning::run(fidelity),
        "nsweep" => nsweep::run(fidelity),
        "ablations" => ablations::run(fidelity),
        other => Err(format!(
            "unknown experiment `{other}`; known: table2 headline fig3 fig4a fig4b \
             fig4c fig4d xval transient pipeline weather tuning nsweep ablations"
        )
        .into()),
    }
}

/// All experiment ids, in report order.
pub const ALL_IDS: &[&str] = &[
    "table2",
    "headline",
    "fig3",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "xval",
    "transient",
    "pipeline",
    "weather",
    "tuning",
    "nsweep",
    "ablations",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_rejects_unknown_id() {
        assert!(run_one("nope", Fidelity::Quick).is_err());
    }

    #[test]
    fn ids_cover_run_all() {
        // Every id resolves.
        for id in ALL_IDS {
            // Only the cheap ones are actually executed here; resolution is
            // what this test checks, via the headline/table2 short-circuits.
            if *id == "table2" {
                assert!(run_one(id, Fidelity::Quick).is_ok());
            }
        }
    }
}
