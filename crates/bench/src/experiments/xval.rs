//! Extension X1 — cross-validation of the analytic solver against the
//! independent discrete-event simulator.
//!
//! The analytic pipeline (reachability + MRGP embedded chain) and the
//! simulator (`nvp-sim`) share only the net definition; agreement of the
//! steady-state expected rewards within the simulation confidence interval
//! validates both implementations against each other.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::analysis::{expected_reliability, ParamAxis, SolverBackend};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use nvp_sim::dspn::{simulate_reward, SimOptions};
use nvp_sim::scenario::model_reward_fn;

/// One cross-validation point.
#[derive(Debug, Clone, PartialEq)]
pub struct XvalPoint {
    /// Description of the configuration.
    pub name: String,
    /// Analytic expected reliability.
    pub analytic: f64,
    /// Simulated estimate (mean).
    pub simulated: f64,
    /// 95% half-width of the simulation estimate.
    pub half_width: f64,
    /// Whether the analytic value falls inside the widened interval.
    pub agrees: bool,
}

/// Runs the cross-validation points.
///
/// # Errors
///
/// Analysis and simulation failures.
pub fn compute(fidelity: Fidelity) -> Result<Vec<XvalPoint>> {
    let horizon = match fidelity {
        Fidelity::Full => 4e6,
        Fidelity::Quick => 6e5,
    };
    let slack = match fidelity {
        Fidelity::Full => 0.004,
        Fidelity::Quick => 0.01,
    };
    let p6 = SystemParams::paper_six_version();
    let configs: Vec<(String, SystemParams)> = vec![
        (
            "four-version, defaults".into(),
            SystemParams::paper_four_version(),
        ),
        ("six-version, defaults (1/gamma = 600 s)".into(), p6.clone()),
        (
            "six-version, 1/gamma = 300 s".into(),
            ParamAxis::RejuvenationInterval.apply(&p6, 300.0),
        ),
        (
            "six-version, 1/gamma = 1500 s".into(),
            ParamAxis::RejuvenationInterval.apply(&p6, 1500.0),
        ),
    ];
    let mut points = Vec::new();
    for (idx, (name, params)) in configs.into_iter().enumerate() {
        let analytic =
            expected_reliability(&params, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
        let net = nvp_core::model::build_model(&params)?;
        let reward = model_reward_fn(&net, &params, RewardPolicy::FailedOnly)?;
        let estimate = simulate_reward(
            &net,
            &reward,
            &SimOptions {
                horizon,
                warmup: horizon / 100.0,
                seed: 1000 + idx as u64,
                batches: 20,
            },
        )?;
        points.push(XvalPoint {
            name,
            analytic,
            simulated: estimate.mean,
            half_width: estimate.half_width,
            agrees: estimate.covers(analytic, slack),
        });
    }
    Ok(points)
}

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis and simulation failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let points = compute(fidelity)?;
    let claims: Vec<ClaimCheck> = points
        .iter()
        .map(|p| ClaimCheck {
            claim: format!("simulation agrees with analytic: {}", p.name),
            paper: format!("analytic {:.6}", p.analytic),
            measured: format!("simulated {:.6} ± {:.6}", p.simulated, p.half_width),
            holds: p.agrees,
        })
        .collect();
    let markdown = claims_table(&claims);
    let csv = {
        let mut s = String::from("config,analytic,simulated,half_width\n");
        for p in &points {
            s.push_str(&format!(
                "\"{}\",{},{},{}\n",
                p.name, p.analytic, p.simulated, p.half_width
            ));
        }
        s
    };
    Ok(RenderedExperiment {
        id: "xval",
        title: "X1 — analytic solver vs discrete-event simulation".into(),
        markdown,
        csv: vec![("xval.csv".into(), csv)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cross_validation_agrees() {
        let points = compute(Fidelity::Quick).unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.agrees,
                "{}: analytic {} vs simulated {} ± {}",
                p.name, p.analytic, p.simulated, p.half_width
            );
        }
    }
}
