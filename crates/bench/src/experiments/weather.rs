//! Extension X6 — environment-modulated input difficulty.
//!
//! The paper's `p = 0.08` is a clear-conditions benchmark figure. Here the
//! environment alternates between clear and adverse (rain/night/glare)
//! states in an independent two-state Markov chain, multiplying `p` while
//! adverse. Because the environment is independent of the fault process,
//! the exact expected reliability is the stationary mixture of the
//! per-environment analytic values — the experiment validates the simulated
//! pipeline against that mixture and quantifies how much of the rejuvenated
//! system's margin survives bad weather.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::analysis::{analyze, ParamAxis, SolverBackend};
use nvp_core::params::SystemParams;
use nvp_core::reliability::ReliabilitySource;
use nvp_core::reward::RewardPolicy;
use nvp_sim::dspn::SimOptions;
use nvp_sim::environment::{run_modulated, Environment};

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis and simulation failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let env = Environment {
        mean_clear: 3600.0 * 4.0, // four clear hours on average
        mean_adverse: 3600.0,     // one adverse hour on average
        p_multiplier: 3.0,        // p: 0.08 -> 0.24 in adverse conditions
    };
    let horizon = match fidelity {
        Fidelity::Full => 6e6,
        Fidelity::Quick => 1.5e6,
    };
    let mut claims = Vec::new();
    let mut csv =
        String::from("system,clear_reliability,adverse_reliability,overall,analytic_mixture\n");
    for (name, params) in [
        ("four-version", SystemParams::paper_four_version()),
        ("six-version", SystemParams::paper_six_version()),
    ] {
        let outcome = run_modulated(
            &params,
            &env,
            &SimOptions {
                horizon,
                warmup: 1e4,
                seed: 4242,
                batches: 2,
            },
            0.05,
        )?;
        let analytic_at = |p: f64| -> Result<f64> {
            Ok(analyze(
                &ParamAxis::HealthyInaccuracy.apply(&params, p),
                RewardPolicy::FailedOnly,
                ReliabilitySource::Generic,
                SolverBackend::Auto,
            )?
            .expected_reliability)
        };
        let w = env.adverse_fraction();
        let mixture =
            (1.0 - w) * analytic_at(params.p)? + w * analytic_at(env.adverse_p(params.p))?;
        let overall = outcome.overall_reliability();
        csv.push_str(&format!(
            "{name},{},{},{overall},{mixture}\n",
            outcome.clear.reliability(),
            outcome.adverse.reliability()
        ));
        claims.push(ClaimCheck {
            claim: format!(
                "{name}: simulated weather-modulated reliability matches the \
                 analytic environment mixture"
            ),
            paper: format!("mixture {mixture:.4} (independence argument)"),
            measured: format!(
                "{overall:.4} over {} requests ({:.0}% adverse time)",
                outcome.clear.total() + outcome.adverse.total(),
                outcome.observed_adverse_fraction * 100.0
            ),
            holds: (overall - mixture).abs() < 0.02,
        });
        claims.push(ClaimCheck {
            claim: format!("{name}: adverse conditions reduce per-request reliability"),
            paper: "n/a (extension)".into(),
            measured: format!(
                "clear {:.4} vs adverse {:.4}",
                outcome.clear.reliability(),
                outcome.adverse.reliability()
            ),
            holds: outcome.adverse.reliability() < outcome.clear.reliability(),
        });
    }
    Ok(RenderedExperiment {
        id: "weather",
        title: "X6 — environment-modulated input difficulty".into(),
        markdown: claims_table(&claims),
        csv: vec![("weather.csv".into(), csv)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_claims_hold() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }
}
