//! Extension X5 — transient dependability, first-passage analysis, and
//! sensitivity elasticities (beyond the paper's steady-state view).
//!
//! * `R(t)` of the four-version system from a fresh start (analytic
//!   uniformization) with interval reliability over a mission day;
//! * mean time to quorum loss: analytic (absorption) for the four-version
//!   system, simulated (first passage over the DSPN) for the six-version
//!   rejuvenating system;
//! * elasticities of `E[R]` for both systems, quantifying §V-B's sensitivity
//!   discussion in a single number per parameter.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck, NamedSeries, SweepSeries};
use crate::{Fidelity, Result};
use nvp_core::analysis::{expected_reliability, sensitivity_profile, SolverBackend};
use nvp_core::dependability::{
    interval_reliability, mean_time_to_quorum_loss, transient_reliability,
};
use nvp_core::params::SystemParams;
use nvp_core::reward::{ModulePlaces, RewardPolicy};
use nvp_sim::firstpassage::{first_passage_time, FirstPassageOptions};
use std::fmt::Write as _;

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis and simulation failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let p4 = SystemParams::paper_four_version();
    let p6 = SystemParams::paper_six_version();
    let mut claims = Vec::new();

    // --- Transient reliability curve of the four-version system. ---
    let times: Vec<f64> = [
        0.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0, 28800.0, 86400.0,
    ]
    .to_vec();
    let curve = transient_reliability(&p4, RewardPolicy::FailedOnly, &times)?;
    let steady = expected_reliability(&p4, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
    let fresh = curve[0].1;
    let at_day = curve.last().map(|&(_, r)| r).unwrap_or(0.0);
    claims.push(ClaimCheck {
        claim: "R(t) starts at the all-healthy reward and degrades towards the \
                steady state"
            .into(),
        paper: "n/a (extension)".into(),
        measured: format!("R(0) = {fresh:.4}, R(1 day) = {at_day:.4}, R(∞) = {steady:.4}"),
        // A day is ~57 compromise time-constants, so R(t) has essentially
        // converged by then; require degradation from fresh and no
        // undershoot below the steady state.
        holds: (fresh - 0.95).abs() < 1e-9 && at_day < fresh && at_day >= steady - 1e-6,
    });
    let day_interval = interval_reliability(&p4, RewardPolicy::FailedOnly, 86_400.0)?;
    claims.push(ClaimCheck {
        claim: "interval reliability over one mission day exceeds the steady state".into(),
        paper: "n/a (extension)".into(),
        measured: format!("{day_interval:.5} vs steady {steady:.5}"),
        holds: day_interval > steady,
    });

    // --- Mean time to quorum loss. ---
    let analytic_quorum = mean_time_to_quorum_loss(&p4)?;
    claims.push(ClaimCheck {
        claim: "mean time to quorum loss, four-version (analytic absorption)".into(),
        paper: "n/a (extension)".into(),
        measured: format!("{analytic_quorum:.3e} s"),
        holds: analytic_quorum.is_finite() && analytic_quorum > 1e6,
    });
    // Cross-check the analytic value by simulation on the same net.
    let replications = match fidelity {
        Fidelity::Full => 400,
        Fidelity::Quick => 120,
    };
    let net4 = nvp_core::model::build_model(&p4)?;
    let places4 = ModulePlaces::locate(&net4)?;
    let threshold4 = p4.voting_threshold();
    let fp4 = first_passage_time(
        &net4,
        |m| m.tokens(places4.healthy) + m.tokens(places4.compromised) < threshold4,
        &FirstPassageOptions {
            replications,
            seed: 99,
            max_time: 1e12,
        },
    )?;
    claims.push(ClaimCheck {
        claim: "simulated first passage confirms the analytic quorum-loss time".into(),
        paper: format!("{analytic_quorum:.3e} s (analytic)"),
        measured: format!(
            "{:.3e} ± {:.2e} s over {} replications",
            fp4.time.mean, fp4.time.half_width, fp4.hits
        ),
        holds: fp4.censored == 0 && fp4.time.covers(analytic_quorum, analytic_quorum * 0.05),
    });
    // Rejuvenating system: simulation only (deterministic clock). Quorum
    // loss needs three modules simultaneously unavailable while failures
    // last only 3 s, so the expected time is astronomically long; the run
    // is censored at a horizon already far beyond the four-version value,
    // and heavy censoring *is* the result: the six-version system holds its
    // quorum longer than the censoring horizon in most replications.
    let (reps6, horizon6) = match fidelity {
        Fidelity::Full => (24, 2e8),
        Fidelity::Quick => (8, 5e7),
    };
    let net6 = nvp_core::model::build_model(&p6)?;
    let places6 = ModulePlaces::locate(&net6)?;
    let threshold6 = p6.voting_threshold();
    let fp6 = first_passage_time(
        &net6,
        |m| m.tokens(places6.healthy) + m.tokens(places6.compromised) < threshold6,
        &FirstPassageOptions {
            replications: reps6,
            seed: 100,
            max_time: horizon6,
        },
    )?;
    claims.push(ClaimCheck {
        claim: "six-version quorum survives far beyond the four-version loss time \
                (simulated first passage, censored horizon)"
            .into(),
        paper: "n/a (extension)".into(),
        measured: format!(
            "{} of {} replications still had quorum at {horizon6:.1e} s \
             (four-version loses it after {analytic_quorum:.2e} s on average)",
            fp6.censored, reps6
        ),
        holds: horizon6 > 2.0 * analytic_quorum && fp6.censored * 2 > reps6,
    });

    // --- Sensitivity elasticities. ---
    let mut sens_md = String::from(
        "\nElasticities (x/R · dR/dx) at the defaults, sorted by magnitude:\n\n\
         | axis | four-version | six-version |\n|---|---|---|\n",
    );
    let prof4 = sensitivity_profile(&p4, RewardPolicy::FailedOnly)?;
    let prof6 = sensitivity_profile(&p6, RewardPolicy::FailedOnly)?;
    for (axis, s6) in &prof6 {
        let s4 = prof4
            .iter()
            .find(|(a, _)| a == axis)
            .map(|&(_, s)| format!("{s:+.4}"))
            .unwrap_or_else(|| "—".into());
        let _ = writeln!(sens_md, "| {} | {} | {:+.4} |", axis.label(), s4, s6);
    }
    let pprime_dominates = prof4
        .first()
        .is_some_and(|(a, _)| *a == nvp_core::analysis::ParamAxis::CompromisedInaccuracy);
    claims.push(ClaimCheck {
        claim: "p' is the dominant sensitivity of the non-rejuvenating system \
                (it spends most time compromised)"
            .into(),
        paper: "§V-B: \"opting for a system with rejuvenation may cover broader \
                scenarios\" when p' is unknown"
            .into(),
        measured: format!(
            "top four-version elasticity: {} ({:+.4})",
            prof4[0].0.label(),
            prof4[0].1
        ),
        holds: pprime_dominates,
    });

    let series = SweepSeries {
        axis_label: "mission time t [s]".into(),
        value_label: "R(t)".into(),
        series: vec![NamedSeries {
            name: "four-version transient reliability".into(),
            points: curve,
        }],
    };
    let markdown = format!(
        "{}\n{}\n{}",
        claims_table(&claims),
        series.to_markdown(),
        sens_md
    );
    Ok(RenderedExperiment {
        id: "transient",
        title: "X5 — transient dependability, quorum loss, sensitivities".into(),
        markdown,
        csv: vec![("transient_r_of_t.csv".into(), series.to_csv())],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_experiment_claims_hold() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
        assert!(r.markdown.contains("Elasticities"));
    }
}
