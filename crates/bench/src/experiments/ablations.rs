//! Extension X4 — ablations over the interpretation decisions documented in
//! `DESIGN.md`.
//!
//! 1. **Reward policy**: the calibrated `FailedOnly` reading vs the literal
//!    `AsWritten` reading of §IV-D. Only the former produces the interior
//!    optimum of Figure 3.
//! 2. **Server semantics**: single- vs infinite-server firing of
//!    `Tc`/`Tf`/`Tr`. Single-server matches the paper's headline value.
//! 3. **`Trj` distribution**: exponential (analytic) vs deterministic
//!    (simulation-only — the net then enables two concurrent deterministic
//!    transitions). The steady-state effect is negligible because the
//!    rejuvenation duration (3 s) is tiny against the interval (600 s).

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::analysis::{expected_reliability, sweep, ParamAxis, SolverBackend};
use nvp_core::params::{RejuvenationDistribution, ServerSemantics, SystemParams};
use nvp_core::reward::RewardPolicy;
use nvp_sim::dspn::{simulate_reward, SimOptions};
use nvp_sim::scenario::model_reward_fn;

/// Runs the ablations and renders the report section.
///
/// # Errors
///
/// Analysis and simulation failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let p6 = SystemParams::paper_six_version();
    let mut claims = Vec::new();

    // 1. Reward policy: interior optimum vs monotone curve.
    let grid = [200.0, 450.0, 600.0, 1200.0, 3000.0];
    let failed_only = sweep(
        &p6,
        ParamAxis::RejuvenationInterval,
        &grid,
        RewardPolicy::FailedOnly,
    )?;
    let as_written = sweep(
        &p6,
        ParamAxis::RejuvenationInterval,
        &grid,
        RewardPolicy::AsWritten,
    )?;
    let failed_only_interior =
        failed_only[1].1 > failed_only[0].1 && failed_only[1].1 > failed_only[4].1;
    // Under the literal reading, smaller intervals are monotonically better.
    let as_written_monotone = as_written.windows(2).all(|w| w[0].1 >= w[1].1 - 1e-9);
    claims.push(ClaimCheck {
        claim: "only the FailedOnly reward policy reproduces Figure 3's interior optimum".into(),
        paper: "Fig. 3 shows an interior maximum".into(),
        measured: format!(
            "FailedOnly interior: {failed_only_interior}; AsWritten monotone: {as_written_monotone}"
        ),
        holds: failed_only_interior && as_written_monotone,
    });

    // 2. Server semantics at the four-version defaults.
    let mut p4_inf = SystemParams::paper_four_version();
    p4_inf.semantics = ServerSemantics::InfiniteServer;
    let r4_single = expected_reliability(
        &SystemParams::paper_four_version(),
        RewardPolicy::FailedOnly,
        SolverBackend::Auto,
    )?;
    let r4_infinite = expected_reliability(&p4_inf, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
    let paper_r4 = super::headline::PAPER_R4;
    claims.push(ClaimCheck {
        claim: "single-server semantics match the paper's E[R_4v]; infinite-server does not".into(),
        paper: format!("{paper_r4}"),
        measured: format!("single {r4_single:.6}, infinite {r4_infinite:.6}"),
        holds: (r4_single - paper_r4).abs() < (r4_infinite - paper_r4).abs()
            && (r4_single - paper_r4).abs() / paper_r4 < 0.005,
    });

    // 3. Trj distribution: deterministic variant by simulation.
    let horizon = match fidelity {
        Fidelity::Full => 3e6,
        Fidelity::Quick => 6e5,
    };
    let mut p6_det = p6.clone();
    p6_det.rejuvenation_distribution = RejuvenationDistribution::Deterministic;
    let net_det = nvp_core::model::build_model(&p6_det)?;
    let reward = model_reward_fn(&net_det, &p6_det, RewardPolicy::FailedOnly)?;
    let det_estimate = simulate_reward(
        &net_det,
        &reward,
        &SimOptions {
            horizon,
            warmup: horizon / 100.0,
            seed: 4242,
            batches: 20,
        },
    )?;
    let exp_analytic = expected_reliability(&p6, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
    claims.push(ClaimCheck {
        claim: "deterministic rejuvenation duration changes E[R_6v] only marginally".into(),
        paper: "n/a (Table II is ambiguous about Trj's distribution)".into(),
        measured: format!(
            "deterministic (sim) {:.5} ± {:.5} vs exponential (analytic) {exp_analytic:.5}",
            det_estimate.mean, det_estimate.half_width
        ),
        holds: (det_estimate.mean - exp_analytic).abs() < 0.01,
    });

    // 4. Repair sharing the r budget (the §II-B "rejuvenating or
    //    recovering" reading) vs the Figure 2 (c) encoding (guard g2 on
    //    Trj1/Trj2 only).
    let mut p6_shared = p6.clone();
    p6_shared.repair_shares_budget = true;
    let r_shared = expected_reliability(&p6_shared, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
    let r_figure = expected_reliability(&p6, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
    claims.push(ClaimCheck {
        claim: "letting repair share the r budget barely moves E[R_6v] \
                (failures are too short-lived to collide with rejuvenation often)"
            .into(),
        paper: "§II-B wording vs Figure 2(c) guards".into(),
        measured: format!("shared budget {r_shared:.6} vs figure encoding {r_figure:.6}"),
        holds: (r_shared - r_figure).abs() < 0.005,
    });

    Ok(RenderedExperiment {
        id: "ablations",
        title: "X4 — ablations of the interpretation decisions".into(),
        markdown: claims_table(&claims),
        csv: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_claims_hold() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }
}
