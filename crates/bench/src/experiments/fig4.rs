//! Figure 4 — sensitivity of both systems' expected reliability to
//! (a) the mean time to compromise, (b) the error dependency α,
//! (c) the healthy inaccuracy p, and (d) the compromised inaccuracy p′.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck, NamedSeries, SweepSeries};
use crate::{Fidelity, Result};
use nvp_core::analysis::{find_crossover, linspace, sweep_parallel, ParamAxis};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;

/// Both curves of one Figure 4 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelResult {
    /// `(x, E[R_4v])` — four-version, no rejuvenation.
    pub four: Vec<(f64, f64)>,
    /// `(x, E[R_6v])` — six-version with rejuvenation.
    pub six: Vec<(f64, f64)>,
}

/// Sweeps both systems over `axis`.
///
/// # Errors
///
/// Analysis failures.
pub fn panel(axis: ParamAxis, grid: &[f64]) -> Result<PanelResult> {
    let p4 = SystemParams::paper_four_version();
    let p6 = SystemParams::paper_six_version();
    Ok(PanelResult {
        four: sweep_parallel(&p4, axis, grid, RewardPolicy::FailedOnly)?,
        six: sweep_parallel(&p6, axis, grid, RewardPolicy::FailedOnly)?,
    })
}

fn render(
    id: &'static str,
    title: &str,
    axis: ParamAxis,
    result: &PanelResult,
    claims: Vec<ClaimCheck>,
    csv_name: &str,
) -> RenderedExperiment {
    let series = SweepSeries {
        axis_label: axis.label().to_string(),
        value_label: "expected reliability".into(),
        series: vec![
            NamedSeries {
                name: "four-version (no rejuvenation)".into(),
                points: result.four.clone(),
            },
            NamedSeries {
                name: "six-version (rejuvenation)".into(),
                points: result.six.clone(),
            },
        ],
    };
    RenderedExperiment {
        id,
        title: title.to_string(),
        markdown: format!("{}\n{}", claims_table(&claims), series.to_markdown()),
        csv: vec![(csv_name.to_string(), series.to_csv())],
    }
}

/// Relative drop of a curve from its first to its last point, in percent.
fn relative_drop(points: &[(f64, f64)]) -> f64 {
    match (points.first(), points.last()) {
        (Some(&(_, first)), Some(&(_, last))) if first > 0.0 => (first - last) / first * 100.0,
        _ => 0.0,
    }
}

/// Figure 4 (a): vary `1/λc`; the paper reports the four-version system
/// winning below ≈525 s and above ≈6000 s.
///
/// # Errors
///
/// Analysis failures.
pub fn run_a(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let grid: Vec<f64> = match fidelity {
        Fidelity::Full => vec![
            100.0, 200.0, 300.0, 400.0, 525.0, 700.0, 1000.0, 1523.0, 2000.0, 3000.0, 4000.0,
            5000.0, 6000.0, 7000.0, 8000.0, 10000.0,
        ],
        Fidelity::Quick => vec![200.0, 525.0, 1523.0, 6000.0, 8000.0],
    };
    let result = panel(ParamAxis::MeanTimeToCompromise, &grid)?;
    let p4 = SystemParams::paper_four_version();
    let p6 = SystemParams::paper_six_version();
    let low = find_crossover(
        &p4,
        &p6,
        ParamAxis::MeanTimeToCompromise,
        50.0,
        1000.0,
        RewardPolicy::FailedOnly,
    )?;
    let high = find_crossover(
        &p4,
        &p6,
        ParamAxis::MeanTimeToCompromise,
        4000.0,
        12000.0,
        RewardPolicy::FailedOnly,
    )?;
    let claims = vec![
        ClaimCheck {
            claim: "four-version wins when 1/lambda_c is small (below a low crossover)".into(),
            paper: "crossover at ≈525 s".into(),
            measured: format!("crossover at {:?} s", low.map(|x| x.round())),
            holds: low.is_some_and(|x| (100.0..=1000.0).contains(&x)),
        },
        ClaimCheck {
            claim: "four-version wins again when 1/lambda_c is large (high crossover)".into(),
            paper: "crossover at ≈6000 s".into(),
            measured: format!("crossover at {:?} s", high.map(|x| x.round())),
            holds: high.is_some_and(|x| (4000.0..=9000.0).contains(&x)),
        },
        ClaimCheck {
            claim: "six-version wins between the crossovers (incl. the defaults)".into(),
            paper: "6v better for all other values".into(),
            measured: {
                let at_default = result
                    .six
                    .iter()
                    .zip(&result.four)
                    .find(|((x, _), _)| (*x - 1523.0).abs() < 1.0);
                match at_default {
                    Some(((_, r6), (_, r4))) => format!("at 1523 s: 6v {r6:.4} vs 4v {r4:.4}"),
                    None => "default not on grid".into(),
                }
            },
            holds: result
                .six
                .iter()
                .zip(&result.four)
                .filter(|((x, _), _)| (700.0..=5000.0).contains(x))
                .all(|((_, r6), (_, r4))| r6 > r4),
        },
    ];
    Ok(render(
        "fig4a",
        "Figure 4(a) — sensitivity to the mean time to compromise",
        ParamAxis::MeanTimeToCompromise,
        &result,
        claims,
        "fig4a_mttc_sweep.csv",
    ))
}

/// Figure 4 (b): vary α; the paper reports a ≈1.5% reliability drop for the
/// four-version system and ≈6.6% for the six-version system from α = 0.1 to
/// α = 1.0.
///
/// # Errors
///
/// Analysis failures.
pub fn run_b(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let steps = match fidelity {
        Fidelity::Full => 10,
        Fidelity::Quick => 4,
    };
    let grid = linspace(0.1, 1.0, steps);
    let result = panel(ParamAxis::Alpha, &grid)?;
    let drop4 = relative_drop(&result.four);
    let drop6 = relative_drop(&result.six);
    let claims = vec![
        ClaimCheck {
            claim: "alpha impact on the four-version system is small".into(),
            paper: "≈1.5% drop from alpha 0.1 to 1.0".into(),
            measured: format!("{drop4:.2}% drop"),
            holds: (0.5..=3.0).contains(&drop4),
        },
        ClaimCheck {
            claim: "alpha impact on the six-version system is larger but slight".into(),
            paper: "≈6.6% drop".into(),
            measured: format!("{drop6:.2}% drop"),
            holds: (4.0..=9.0).contains(&drop6) && drop6 > drop4,
        },
        ClaimCheck {
            claim: "low error dependency benefits reliability (both curves decrease)".into(),
            paper: "reliability decreases with alpha".into(),
            measured: "see series".into(),
            holds: drop4 > 0.0 && drop6 > 0.0,
        },
    ];
    Ok(render(
        "fig4b",
        "Figure 4(b) — sensitivity to the error dependency alpha",
        ParamAxis::Alpha,
        &result,
        claims,
        "fig4b_alpha_sweep.csv",
    ))
}

/// Figure 4 (c): vary `p`; the paper reports a ≈5% drop for the four-version
/// system and ≈13% for the six-version system from p = 0.01 to 0.2, with the
/// six-version better everywhere.
///
/// # Errors
///
/// Analysis failures.
pub fn run_c(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let steps = match fidelity {
        Fidelity::Full => 12,
        Fidelity::Quick => 4,
    };
    let grid = linspace(0.01, 0.2, steps);
    let result = panel(ParamAxis::HealthyInaccuracy, &grid)?;
    let drop4 = relative_drop(&result.four);
    let drop6 = relative_drop(&result.six);
    let six_always_better = result
        .six
        .iter()
        .zip(&result.four)
        .all(|((_, r6), (_, r4))| r6 > r4);
    let claims = vec![
        ClaimCheck {
            claim: "six-version beats four-version for all p in [0.01, 0.2]".into(),
            paper: "better reliability in all cases".into(),
            measured: format!("six better at all {} grid points", result.six.len()),
            holds: six_always_better,
        },
        ClaimCheck {
            claim: "p impact on the six-version system".into(),
            paper: "≈13% drop".into(),
            measured: format!("{drop6:.2}% drop"),
            holds: (10.0..=16.0).contains(&drop6),
        },
        ClaimCheck {
            claim: "p impact on the four-version system".into(),
            paper: "≈5% drop".into(),
            measured: format!("{drop4:.2}% drop"),
            holds: (3.0..=7.0).contains(&drop4),
        },
    ];
    Ok(render(
        "fig4c",
        "Figure 4(c) — sensitivity to the healthy-module inaccuracy p",
        ParamAxis::HealthyInaccuracy,
        &result,
        claims,
        "fig4c_p_sweep.csv",
    ))
}

/// Figure 4 (d): vary `p′`; the paper reports rejuvenation paying off only
/// above a crossover at ≈0.3.
///
/// # Errors
///
/// Analysis failures.
pub fn run_d(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let steps = match fidelity {
        Fidelity::Full => 15,
        Fidelity::Quick => 5,
    };
    let grid = linspace(0.1, 0.8, steps);
    let result = panel(ParamAxis::CompromisedInaccuracy, &grid)?;
    let p4 = SystemParams::paper_four_version();
    let p6 = SystemParams::paper_six_version();
    let crossover = find_crossover(
        &p4,
        &p6,
        ParamAxis::CompromisedInaccuracy,
        0.1,
        0.8,
        RewardPolicy::FailedOnly,
    )?;
    let six_at_08 = result.six.last().map(|&(_, r)| r).unwrap_or(0.0);
    let four_at_08 = result.four.last().map(|&(_, r)| r).unwrap_or(0.0);
    let claims = vec![
        ClaimCheck {
            claim: "rejuvenation is beneficial only above a p' crossover".into(),
            paper: "crossover at p' ≈ 0.3".into(),
            measured: format!(
                "crossover at p' = {:?}",
                crossover.map(|x| (x * 1000.0).round() / 1000.0)
            ),
            holds: crossover.is_some_and(|x| (0.2..=0.4).contains(&x)),
        },
        ClaimCheck {
            claim: "rejuvenation mitigates degradation at high p'".into(),
            paper: "higher reliability even at p' = 0.8".into(),
            measured: format!("at p' = 0.8: 6v {six_at_08:.4} vs 4v {four_at_08:.4}"),
            holds: six_at_08 > four_at_08 + 0.2,
        },
    ];
    Ok(render(
        "fig4d",
        "Figure 4(d) — sensitivity to the compromised-module inaccuracy p'",
        ParamAxis::CompromisedInaccuracy,
        &result,
        claims,
        "fig4d_pprime_sweep.csv",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_claims_hold() {
        let r = run_a(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }

    #[test]
    fn fig4b_claims_hold() {
        let r = run_b(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }

    #[test]
    fn fig4c_claims_hold() {
        let r = run_c(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }

    #[test]
    fn fig4d_claims_hold() {
        let r = run_d(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }

    #[test]
    fn relative_drop_math() {
        assert!((relative_drop(&[(0.0, 1.0), (1.0, 0.9)]) - 10.0).abs() < 1e-12);
        assert_eq!(relative_drop(&[]), 0.0);
    }
}
