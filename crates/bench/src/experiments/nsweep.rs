//! Extension X3 — generic N sweep.
//!
//! The paper evaluates N = 4 (no rejuvenation) and N = 6 (rejuvenation,
//! f = r = 1). With the generic reliability model the same pipeline extends
//! to any `(N, f, r)`; this experiment sweeps the module count (and one
//! f = 2 configuration) and reports the expected reliability and the
//! optimal rejuvenation interval per configuration.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::analysis::expected_reliability;
use nvp_core::analysis::{analyze, ParamAxis, SolverBackend};
use nvp_core::params::SystemParams;
use nvp_core::reliability::ReliabilitySource;
use nvp_core::reward::RewardPolicy;

/// One configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NPoint {
    /// Number of module versions.
    pub n: u32,
    /// Tolerated compromised modules.
    pub f: u32,
    /// Simultaneously rejuvenating modules.
    pub r: u32,
    /// Expected reliability (generic model) at the Table II rates.
    pub reliability: f64,
    /// Optimal rejuvenation interval in seconds.
    pub optimal_interval: f64,
}

/// Computes the sweep.
///
/// # Errors
///
/// Analysis failures.
pub fn compute(fidelity: Fidelity) -> Result<Vec<NPoint>> {
    let configs: &[(u32, u32, u32)] = match fidelity {
        Fidelity::Full => &[
            (6, 1, 1),
            (7, 1, 1),
            (8, 1, 1),
            (9, 1, 1),
            (9, 2, 1),
            (11, 2, 2),
        ],
        Fidelity::Quick => &[(6, 1, 1), (7, 1, 1), (9, 2, 1)],
    };
    let mut out = Vec::new();
    for &(n, f, r) in configs {
        let params = SystemParams::builder().n(n).f(f).r(r).build()?;
        let report = analyze(
            &params,
            RewardPolicy::FailedOnly,
            ReliabilitySource::Generic,
            SolverBackend::Auto,
        )?;
        // A coarse grid search is ample here: per-configuration optima are
        // reported at 50 s resolution (the full golden-section search runs
        // in the fig3 experiment for the paper's configuration).
        let step = match fidelity {
            Fidelity::Full => 50.0,
            Fidelity::Quick => 200.0,
        };
        let mut opt = (f64::NEG_INFINITY, 200.0);
        let mut interval = 200.0;
        while interval <= 3000.0 {
            let candidate = ParamAxis::RejuvenationInterval.apply(&params, interval);
            let value =
                expected_reliability(&candidate, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
            if value > opt.0 {
                opt = (value, interval);
            }
            interval += step;
        }
        let opt = opt.1;
        out.push(NPoint {
            n,
            f,
            r,
            reliability: report.expected_reliability,
            optimal_interval: opt,
        });
    }
    Ok(out)
}

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let points = compute(fidelity)?;
    let mut csv = String::from("n,f,r,reliability,optimal_interval_s\n");
    let mut table = String::from(
        "| N | f | r | E[R] (generic) | optimal 1/gamma [s] |\n|---|---|---|---|---|\n",
    );
    for p in &points {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            p.n, p.f, p.r, p.reliability, p.optimal_interval
        ));
        table.push_str(&format!(
            "| {} | {} | {} | {:.6} | {:.0} |\n",
            p.n, p.f, p.r, p.reliability, p.optimal_interval
        ));
    }
    // Under the paper's BFT error definition the voting threshold is fixed
    // at 2f + r + 1 regardless of N, so every module beyond the 3f + 2r + 1
    // minimum adds ways to *reach* the error threshold without raising it —
    // spare versions strictly hurt output reliability. (The same asymmetry
    // makes R_{5,0,1} > R_{6,0,0} inside the paper's own matrix.)
    let f1: Vec<&NPoint> = points.iter().filter(|p| p.f == 1 && p.r == 1).collect();
    let monotone_decreasing = f1.windows(2).all(|w| w[1].reliability <= w[0].reliability);
    let claims = vec![ClaimCheck {
        claim: "with the fixed 2f+r+1 threshold, spare versions beyond 3f+2r+1 \
                decrease output reliability (f = r = 1 row)"
            .into(),
        paper: "n/a (extension; consistent with the paper's R matrix asymmetry)".into(),
        measured: f1
            .iter()
            .map(|p| format!("N={}: {:.4}", p.n, p.reliability))
            .collect::<Vec<_>>()
            .join(", "),
        holds: monotone_decreasing,
    }];
    Ok(RenderedExperiment {
        id: "nsweep",
        title: "X3 — generic (N, f, r) sweep".into(),
        markdown: format!("{}\n{table}", claims_table(&claims)),
        csv: vec![("nsweep.csv".into(), csv)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsweep_runs_and_reports() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(r.markdown.contains("| 9 | 2 | 1 |"));
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }
}
