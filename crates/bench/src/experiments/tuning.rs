//! Extension X7 — rejuvenation-interval tuning across threat levels.
//!
//! Figure 3 fixes the threat level (`1/λc = 1523 s`) and sweeps the
//! rejuvenation interval. Deployments face *varying* threat levels, so the
//! operational question is the induced curve: *optimal interval as a
//! function of the mean time to compromise*. The claim checked here is the
//! monotone relationship — heavier attack pressure calls for more frequent
//! rejuvenation — plus the size of the penalty for not re-tuning (keeping
//! the paper's 600 s default under heavy attack).

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::analysis::{
    expected_reliability, optimal_rejuvenation_interval, ParamAxis, SolverBackend,
};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;

/// One threat level's tuning row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningPoint {
    /// Mean time to compromise (`1/λc`) in seconds.
    pub mean_time_to_compromise: f64,
    /// Optimal rejuvenation interval in seconds.
    pub optimal_interval: f64,
    /// Expected reliability at the optimum.
    pub at_optimum: f64,
    /// Expected reliability at the paper's 600 s default.
    pub at_default: f64,
}

/// Computes the tuning curve.
///
/// # Errors
///
/// Analysis failures.
pub fn compute(fidelity: Fidelity) -> Result<Vec<TuningPoint>> {
    let levels: &[f64] = match fidelity {
        Fidelity::Full => &[500.0, 800.0, 1000.0, 1523.0, 2500.0, 5000.0],
        Fidelity::Quick => &[500.0, 1523.0, 5000.0],
    };
    let base = SystemParams::paper_six_version();
    let mut out = Vec::new();
    for &mttc in levels {
        let params = ParamAxis::MeanTimeToCompromise.apply(&base, mttc);
        let (optimal_interval, at_optimum) =
            optimal_rejuvenation_interval(&params, 100.0, 3000.0, RewardPolicy::FailedOnly)?;
        let at_default =
            expected_reliability(&params, RewardPolicy::FailedOnly, SolverBackend::Auto)?;
        out.push(TuningPoint {
            mean_time_to_compromise: mttc,
            optimal_interval,
            at_optimum,
            at_default,
        });
    }
    Ok(out)
}

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Analysis failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let points = compute(fidelity)?;
    let mut csv = String::from("mttc_s,optimal_interval_s,at_optimum,at_default_600s\n");
    let mut table = String::from(
        "| 1/lambda_c [s] | optimal 1/gamma [s] | E[R] at optimum | E[R] at 600 s |\n\
         |---|---|---|---|\n",
    );
    for p in &points {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            p.mean_time_to_compromise, p.optimal_interval, p.at_optimum, p.at_default
        ));
        table.push_str(&format!(
            "| {:.0} | {:.0} | {:.6} | {:.6} |\n",
            p.mean_time_to_compromise, p.optimal_interval, p.at_optimum, p.at_default
        ));
    }
    let monotone = points
        .windows(2)
        .all(|w| w[1].optimal_interval >= w[0].optimal_interval - 1.0);
    let heavy = points.first().expect("non-empty levels");
    let default_penalty = heavy.at_optimum - heavy.at_default;
    let claims = vec![
        ClaimCheck {
            claim: "the optimal rejuvenation interval grows with the mean time to \
                    compromise (heavier attack pressure → rejuvenate more often)"
                .into(),
            paper: "n/a (extension of Figure 3)".into(),
            measured: points
                .iter()
                .map(|p| {
                    format!(
                        "{:.0}s→{:.0}s",
                        p.mean_time_to_compromise, p.optimal_interval
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
            holds: monotone,
        },
        ClaimCheck {
            claim: "keeping the 600 s default under heavy attack costs real \
                    reliability"
                .into(),
            paper: "n/a (extension)".into(),
            measured: format!(
                "at 1/lambda_c = {:.0} s: optimum {:.4} vs default {:.4} \
                 (penalty {:.4})",
                heavy.mean_time_to_compromise, heavy.at_optimum, heavy.at_default, default_penalty
            ),
            holds: default_penalty > 0.02,
        },
    ];
    Ok(RenderedExperiment {
        id: "tuning",
        title: "X7 — optimal rejuvenation interval vs threat level".into(),
        markdown: format!("{}\n{table}", claims_table(&claims)),
        csv: vec![("tuning.csv".into(), csv)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_claims_hold() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
        assert!(r.markdown.contains("| 1523 |"));
    }
}
