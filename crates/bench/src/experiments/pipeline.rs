//! Extension X2 — per-request perception pipeline statistics.
//!
//! Runs the operational voting pipeline (synthetic classifier ensemble +
//! BFT voter) in fixed system states and compares the empirical verdict
//! frequencies with the first-principles reliability functions; also runs
//! the end-to-end scenario (requests along a simulated fault/rejuvenation
//! trajectory) and the label-level traffic-sign pipeline.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::{Fidelity, Result};
use nvp_core::params::SystemParams;
use nvp_core::reliability::generic;
use nvp_core::state::SystemState;
use nvp_core::voting::VotingScheme;
use nvp_sim::perception::{EnsembleModel, LabelPipeline};
use nvp_sim::scenario::{run_scenario, ScenarioOptions};

/// Runs the experiment and renders the report section.
///
/// # Errors
///
/// Simulation failures.
pub fn run(fidelity: Fidelity) -> Result<RenderedExperiment> {
    let requests: u64 = match fidelity {
        Fidelity::Full => 400_000,
        Fidelity::Quick => 60_000,
    };
    let params = SystemParams::paper_six_version();
    let model = EnsembleModel {
        p: params.p,
        p_prime: params.p_prime,
        alpha: params.alpha,
        scheme: VotingScheme::for_params(&params),
    };
    let mut claims = Vec::new();
    let mut csv = String::from("state,analytic,empirical,errors,inconclusive\n");
    for state in [
        SystemState::new(6, 0, 0),
        SystemState::new(4, 2, 0),
        SystemState::new(2, 4, 0),
        SystemState::new(0, 6, 0),
        SystemState::new(4, 1, 1),
        SystemState::new(3, 1, 2),
    ] {
        let stats = model.run(state, requests, 7 + state.healthy as u64);
        let analytic = generic::reliability(
            state,
            params.voting_threshold(),
            params.p,
            params.p_prime,
            params.alpha,
        );
        let empirical = stats.reliability();
        csv.push_str(&format!(
            "\"{state}\",{analytic},{empirical},{},{}\n",
            stats.error, stats.inconclusive
        ));
        claims.push(ClaimCheck {
            claim: format!("per-request reliability in state {state}"),
            paper: format!("R = {analytic:.4} (first-principles model)"),
            measured: format!("{empirical:.4} over {} requests", stats.total()),
            holds: (empirical - analytic).abs() < 0.006,
        });
    }

    // End-to-end scenario.
    let scenario = run_scenario(
        &SystemParams::paper_four_version(),
        &ScenarioOptions {
            sim: nvp_sim::dspn::SimOptions {
                horizon: match fidelity {
                    Fidelity::Full => 3e6,
                    Fidelity::Quick => 8e5,
                },
                warmup: 1e4,
                seed: 77,
                batches: 20,
            },
            request_rate: 0.02,
        },
    )?;
    let generic_analytic = nvp_core::analysis::analyze(
        &SystemParams::paper_four_version(),
        nvp_core::reward::RewardPolicy::FailedOnly,
        nvp_core::reliability::ReliabilitySource::Generic,
        nvp_core::analysis::SolverBackend::Auto,
    )?
    .expected_reliability;
    let end_to_end = scenario.requests.reliability();
    claims.push(ClaimCheck {
        claim: "end-to-end request stream along the fault trajectory (4-version)".into(),
        paper: format!("{generic_analytic:.4} (generic-model analytic)"),
        measured: format!(
            "{end_to_end:.4} over {} requests",
            scenario.requests.total()
        ),
        holds: (end_to_end - generic_analytic).abs() < 0.025,
    });

    // Label-level pipeline: voting on concrete labels is strictly safer.
    let state = SystemState::new(1, 5, 0);
    let abstract_rel = model.run(state, requests, 3).reliability();
    let label_rel = LabelPipeline {
        classes: 43, // GTSRB class count
        p: params.p,
        alpha: params.alpha,
        threshold: params.voting_threshold(),
    }
    .run(state, requests, 3)
    .reliability();
    claims.push(ClaimCheck {
        claim: "label-level voting (43-class synthetic signs) is safer than the \
                abstract tally in compromised-heavy states"
            .into(),
        paper: "n/a (extension)".into(),
        measured: format!("label {label_rel:.4} vs abstract {abstract_rel:.4}"),
        holds: label_rel > abstract_rel,
    });

    // Heterogeneous ensembles: the paper averages LeNet/AlexNet/ResNet into
    // p = 0.08; the exact Poisson-binomial computation quantifies what that
    // averaging hides (independent-error setting).
    use nvp_core::reliability::heterogeneous;
    let diverse = [0.14, 0.09, 0.01, 0.14, 0.09, 0.01]; // mean 0.08
    let exact = heterogeneous::reliability(&diverse, 0, 0, params.p_prime, 4)?;
    let averaged = heterogeneous::reliability(&[0.08; 6], 0, 0, params.p_prime, 4)?;
    claims.push(ClaimCheck {
        claim: "averaging diverse module accuracies into one p (as the paper does \
                with LeNet/AlexNet/ResNet) changes the all-healthy reliability \
                only marginally under independent errors"
            .into(),
        paper: "paper uses the average p = 0.08".into(),
        measured: format!(
            "exact heterogeneous {exact:.6} vs averaged {averaged:.6} \
             (difference {:.1e})",
            (exact - averaged).abs()
        ),
        holds: (exact - averaged).abs() < 1e-3,
    });

    Ok(RenderedExperiment {
        id: "pipeline",
        title: "X2 — per-request perception pipeline vs reliability functions".into(),
        markdown: claims_table(&claims),
        csv: vec![("pipeline.csv".into(), csv)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_claims_hold() {
        let r = run(Fidelity::Quick).unwrap();
        assert!(!r.markdown.contains("❌"), "{}", r.markdown);
    }
}
