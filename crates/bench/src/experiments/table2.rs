//! Table II — the default input parameters.
//!
//! The parameters are encoded once in `nvp_core::params::SystemParams`; this
//! experiment renders them back as the paper's table and asserts the
//! encoding matches the published values, so any drift in defaults is caught
//! by the harness itself.

use super::RenderedExperiment;
use crate::report::{claims_table, ClaimCheck};
use crate::Result;
use nvp_core::params::SystemParams;
use std::fmt::Write as _;

/// Renders and checks Table II.
///
/// # Errors
///
/// Fails when the encoded defaults no longer match the published table.
pub fn run() -> Result<RenderedExperiment> {
    let p = SystemParams::paper_six_version();
    let rows: Vec<(&str, &str, String, f64, f64)> = vec![
        // (param, transition, rendered value, encoded, published)
        ("N", "-", "4 or 6".into(), f64::from(p.n), 6.0),
        ("f", "-", p.f.to_string(), f64::from(p.f), 1.0),
        ("r", "-", p.r.to_string(), f64::from(p.r), 1.0),
        ("alpha", "-", p.alpha.to_string(), p.alpha, 0.5),
        ("p", "-", p.p.to_string(), p.p, 0.08),
        ("p'", "-", p.p_prime.to_string(), p.p_prime, 0.5),
        (
            "1/lambda_c",
            "Tc",
            format!("{} s", p.mean_time_to_compromise),
            p.mean_time_to_compromise,
            1523.0,
        ),
        (
            "1/lambda",
            "Tf",
            format!("{} s", p.mean_time_to_failure),
            p.mean_time_to_failure,
            3000.0,
        ),
        (
            "1/mu",
            "Tr",
            format!("{} s", p.mean_time_to_repair),
            p.mean_time_to_repair,
            3.0,
        ),
        (
            "1/mu_r",
            "Trj",
            format!("#Pmr x {} s", p.rejuvenation_unit),
            p.rejuvenation_unit,
            3.0,
        ),
        (
            "1/gamma",
            "Trc",
            format!("{} s", p.rejuvenation_interval),
            p.rejuvenation_interval,
            600.0,
        ),
    ];
    let mut claims = Vec::new();
    let mut table = String::from("| Param. | Associated transition | Value |\n|---|---|---|\n");
    for (name, transition, rendered, encoded, published) in &rows {
        let _ = writeln!(table, "| {name} | {transition} | {rendered} |");
        claims.push(ClaimCheck {
            claim: format!("Table II default for {name}"),
            paper: published.to_string(),
            measured: encoded.to_string(),
            holds: (encoded - published).abs() < 1e-12,
        });
    }
    if let Some(broken) = claims.iter().find(|c| !c.holds) {
        return Err(format!(
            "encoded defaults drifted from Table II: {} (paper {}, encoded {})",
            broken.claim, broken.paper, broken.measured
        )
        .into());
    }
    let markdown = format!("{table}\n{}", claims_table(&claims));
    Ok(RenderedExperiment {
        id: "table2",
        title: "Table II — default input parameters".into(),
        markdown,
        csv: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults_hold() {
        let r = run().unwrap();
        assert!(r.markdown.contains("1523"));
        assert!(r.markdown.contains("Trc"));
        assert!(!r.markdown.contains("❌"));
    }
}
