//! Single-solve hot-path benchmark.
//!
//! ```text
//! single_solve [--out FILE] [--check]
//! ```
//!
//! Times one steady-state solve with the subordinated-chain dedup path on
//! and off, on two models:
//!
//! * the paper's six-version system (fig. 3 baseline) — every subordinated
//!   chain is structurally distinct there, so dedup must cost nothing;
//! * a synthetic equal-rate ring DSPN whose chains all share one structural
//!   class — the repeated-structure case the dedup path exists for.
//!
//! It also microbenchmarks the sparse kernels the hot path runs on
//! (`vecmat_into` / `matvec_into`) and writes everything as a JSON report
//! (default `BENCH_single_solve.json`). The report is re-parsed with
//! [`nvp_obs::json`] before it is written, so a malformed emit fails the
//! run rather than polluting CI artifacts. `--check` additionally asserts
//! the dedup counters and bit-identity invariants and exits non-zero on
//! violation.

use nvp_core::model::build_model;
use nvp_core::params::SystemParams;
use nvp_mrgp::{steady_state_with_options, MrgpStats, SolveOptions, SteadyState};
use nvp_numerics::pool::Jobs;
use nvp_numerics::sparse::CsrBuilder;
use nvp_obs::json::Json;
use nvp_petri::net::{NetBuilder, PetriNet, TransitionKind};
use nvp_petri::reach::{explore, TangibleReachGraph};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Wall-time repetitions per measurement; the minimum is reported.
const REPS: usize = 5;

/// Ring size for the repeated-structure model. Every one of the
/// `RING_POSITIONS` markings owns a structurally identical subordinated
/// chain, so the dedup path solves one class instead of
/// `RING_POSITIONS` chains.
const RING_POSITIONS: usize = 48;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_single_solve.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: single_solve [--out FILE] [--check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`; see --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let fig3_net = match build_model(&SystemParams::paper_six_version()) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("cannot build the six-version model: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fig3 = match bench_model("fig3_six_version", &fig3_net) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig3 benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ring = match bench_model("repeated_ring", &ring_net(RING_POSITIONS, 1.0, 40.0)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ring benchmark failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kernel = bench_kernels(1000);

    let report = render_report(&fig3, &ring, &kernel);
    // Self-validate: the report must round-trip through the same parser
    // the trace-schema checks use.
    let parsed = match Json::parse(&report) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("emitted report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "fig3: {} chains / {} classes, solve {:.2} ms (dedup) vs {:.2} ms (per-row)",
        fig3.stats_on.subordinated_chains,
        fig3.stats_on.dedup_classes,
        fig3.best_on_ms,
        fig3.best_off_ms,
    );
    println!(
        "ring: {} chains / {} classes, solve {:.2} ms (dedup) vs {:.2} ms (per-row), speedup {:.2}x",
        ring.stats_on.subordinated_chains,
        ring.stats_on.dedup_classes,
        ring.best_on_ms,
        ring.best_off_ms,
        ring.speedup(),
    );
    println!(
        "kernels (n=1000): vecmat {:.0} MFLOP/s, matvec {:.0} MFLOP/s",
        kernel.vecmat_mflops, kernel.matvec_mflops
    );
    println!("wrote {out}");

    if check && !run_checks(&fig3, &ring, &parsed) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One model's measurements: solve wall time with dedup on/off plus the
/// solver counters from each run.
struct ModelBench {
    id: &'static str,
    markings: usize,
    best_on_ms: f64,
    best_off_ms: f64,
    stats_on: MrgpStats,
    stats_off: MrgpStats,
    bit_identical: bool,
}

impl ModelBench {
    fn speedup(&self) -> f64 {
        self.best_off_ms / self.best_on_ms
    }
}

fn bench_model(id: &'static str, net: &PetriNet) -> Result<ModelBench, String> {
    let graph = explore(net, 100_000).map_err(|e| format!("explore: {e}"))?;
    let (off, stats_off, best_off_ms) = timed_solve(&graph, false)?;
    let (on, stats_on, best_on_ms) = timed_solve(&graph, true)?;
    let bit_identical = on.probabilities().len() == off.probabilities().len()
        && on
            .probabilities()
            .iter()
            .zip(off.probabilities())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    Ok(ModelBench {
        id,
        markings: graph.tangible_count(),
        best_on_ms,
        best_off_ms,
        stats_on,
        stats_off,
        bit_identical,
    })
}

/// Solve `REPS` times serially and keep the fastest wall time; returns the
/// last solution and its stats (identical across repetitions).
fn timed_solve(
    graph: &TangibleReachGraph,
    dedup: bool,
) -> Result<(SteadyState, MrgpStats, f64), String> {
    let options = SolveOptions {
        jobs: Jobs::Fixed(1),
        dedup,
        ..SolveOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let solved = steady_state_with_options(graph, &options)
            .map_err(|e| format!("solve (dedup={dedup}): {e}"))?;
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(solved);
    }
    let (solution, stats) = result.expect("REPS > 0");
    Ok((solution, stats, best))
}

/// A ring of `positions` places with one circulating token hopping at a
/// uniform `rate`, plus a no-op deterministic clock enabled everywhere.
/// Every marking's subordinated chain is the same `positions`-state cycle,
/// so dedup collapses the row stage to a single class solve.
fn ring_net(positions: usize, rate: f64, tau: f64) -> PetriNet {
    let mut b = NetBuilder::new("bench-ring");
    let places: Vec<_> = (0..positions)
        .map(|i| b.place(format!("P{i}"), u32::from(i == 0)))
        .collect();
    let clk = b.place("Clk", 1);
    for i in 0..positions {
        b.transition(format!("hop{i}"), TransitionKind::exponential_rate(rate))
            .expect("valid rate")
            .input(places[i], 1)
            .output(places[(i + 1) % positions], 1);
    }
    b.transition("clock", TransitionKind::deterministic_delay(tau))
        .expect("valid delay")
        .input(clk, 1)
        .output(clk, 1);
    b.build().expect("well-formed ring net")
}

/// Sparse-kernel throughput on the shapes the hot path actually runs:
/// a row-stochastic uniformized matrix with a few off-diagonals per row.
struct KernelBench {
    n: usize,
    nnz: usize,
    vecmat_mflops: f64,
    matvec_mflops: f64,
}

fn bench_kernels(n: usize) -> KernelBench {
    // Deterministic banded stochastic matrix: diagonal plus three
    // wrapped off-diagonals per row — about the density a subordinated
    // chain's uniformized kernel has.
    let mut builder = CsrBuilder::new(n, n);
    for i in 0..n {
        builder.push(i, i, 0.55);
        builder.push(i, (i + 1) % n, 0.25);
        builder.push(i, (i + 7) % n, 0.15);
        builder.push(i, (i + 31) % n, 0.05);
    }
    let p = builder.build();
    let x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let flops_per_apply = 2.0 * p.nnz() as f64;

    let reps = 2000usize;
    let mut vecmat_best = f64::INFINITY;
    let mut matvec_best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..reps {
            p.vecmat_into(&x, &mut y);
        }
        vecmat_best = vecmat_best.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..reps {
            p.matvec_into(&x, &mut y);
        }
        matvec_best = matvec_best.min(start.elapsed().as_secs_f64());
    }
    // `y` feeds the report only through this checksum, which keeps the
    // kernel loops from being optimized away.
    let checksum: f64 = y.iter().sum();
    assert!(checksum.is_finite());
    KernelBench {
        n,
        nnz: p.nnz(),
        vecmat_mflops: flops_per_apply * reps as f64 / vecmat_best / 1e6,
        matvec_mflops: flops_per_apply * reps as f64 / matvec_best / 1e6,
    }
}

fn render_model(out: &mut String, bench: &ModelBench) {
    let _ = write!(
        out,
        concat!(
            "  \"{}\": {{\n",
            "    \"markings\": {},\n",
            "    \"subordinated_chains\": {},\n",
            "    \"dedup_classes\": {},\n",
            "    \"dedup_hits\": {},\n",
            "    \"steady_state_detections\": {},\n",
            "    \"max_truncation_steps_dedup\": {},\n",
            "    \"max_truncation_steps_per_row\": {},\n",
            "    \"solve_ms_dedup\": {:.4},\n",
            "    \"solve_ms_per_row\": {:.4},\n",
            "    \"speedup\": {:.4},\n",
            "    \"bit_identical\": {}\n",
            "  }}"
        ),
        bench.id,
        bench.markings,
        bench.stats_on.subordinated_chains,
        bench.stats_on.dedup_classes,
        bench.stats_on.dedup_hits,
        bench.stats_on.steady_state_detections,
        bench.stats_on.max_truncation_steps,
        bench.stats_off.max_truncation_steps,
        bench.best_on_ms,
        bench.best_off_ms,
        bench.speedup(),
        bench.bit_identical,
    );
}

fn render_report(fig3: &ModelBench, ring: &ModelBench, kernel: &KernelBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"nvp-bench/single-solve/v1\",\n");
    let _ = writeln!(out, "  \"reps\": {REPS},");
    render_model(&mut out, fig3);
    out.push_str(",\n");
    render_model(&mut out, ring);
    let _ = write!(
        out,
        concat!(
            ",\n  \"kernel\": {{\n",
            "    \"n\": {},\n",
            "    \"nnz\": {},\n",
            "    \"vecmat_mflops\": {:.1},\n",
            "    \"matvec_mflops\": {:.1}\n",
            "  }}\n}}\n"
        ),
        kernel.n, kernel.nnz, kernel.vecmat_mflops, kernel.matvec_mflops,
    );
    out
}

/// `--check` assertions; each failure prints its own diagnostic.
fn run_checks(fig3: &ModelBench, ring: &ModelBench, parsed: &Json) -> bool {
    let mut ok = true;
    let mut fail = |message: String| {
        eprintln!("check failed: {message}");
        ok = false;
    };
    if fig3.stats_on.dedup_classes == 0 {
        fail("fig3 solve reports zero dedup classes".into());
    }
    if fig3.stats_on.dedup_classes + fig3.stats_on.dedup_hits != fig3.stats_on.subordinated_chains {
        fail(format!(
            "fig3 class accounting broken: {} classes + {} hits != {} chains",
            fig3.stats_on.dedup_classes,
            fig3.stats_on.dedup_hits,
            fig3.stats_on.subordinated_chains
        ));
    }
    if ring.stats_on.dedup_hits == 0 {
        fail("repeated-structure ring produced no dedup hits".into());
    }
    for bench in [fig3, ring] {
        if !bench.bit_identical {
            fail(format!(
                "{}: dedup solution is not bit-identical to the per-row path",
                bench.id
            ));
        }
    }
    if ring.speedup() < 1.5 {
        fail(format!(
            "repeated-structure speedup {:.2}x below the 1.5x floor",
            ring.speedup()
        ));
    }
    for key in ["fig3_six_version", "repeated_ring", "kernel"] {
        if parsed.get(key).is_none() {
            fail(format!("report is missing the `{key}` object"));
        }
    }
    if ok {
        println!("all checks passed");
    }
    ok
}
