//! Experiment runner CLI.
//!
//! ```text
//! experiments [--quick] [--out DIR] [ID ...]
//! ```
//!
//! Runs the named experiments (all by default), prints the combined markdown
//! report to stdout, and writes per-figure CSV files to `DIR`
//! (default `results/`).

use nvp_bench::experiments::{run_one, RenderedExperiment, ALL_IDS};
use nvp_bench::Fidelity;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut fidelity = Fidelity::Full;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: experiments [--quick] [--out DIR] [ID ...]");
                println!("experiment ids: {}", ALL_IDS.join(" "));
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`; see --help");
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for id in &ids {
        match run_one(id, fidelity) {
            Ok(exp) => {
                print_experiment(&exp);
                for (name, content) in &exp.csv {
                    let path = out_dir.join(name);
                    if let Err(e) = std::fs::write(&path, content) {
                        eprintln!("cannot write {}: {e}", path.display());
                        failures += 1;
                    } else {
                        eprintln!("wrote {}", path.display());
                    }
                }
                if exp.markdown.contains('❌') {
                    failures += 1;
                    eprintln!("experiment `{id}` has failing claims");
                }
            }
            Err(e) => {
                eprintln!("experiment `{id}` failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) reported problems");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_experiment(exp: &RenderedExperiment) {
    println!("## {} (`{}`)\n", exp.title, exp.id);
    println!("{}", exp.markdown);
}
