//! Serve-path latency benchmark.
//!
//! ```text
//! serve_latency [--out FILE] [--check]
//! ```
//!
//! Binds a real [`nvp_serve::Server`] on an ephemeral loopback port and
//! hammers it over TCP exactly as a client would: `GET /healthz`,
//! `GET /metrics`, `POST /v1/analyze` submissions, and `GET /v1/jobs/{id}`
//! polls. Latency quantiles come from the server's own per-endpoint
//! request histograms (the same ones `/metrics` exports), so the numbers
//! are the daemon's view of service time — connection setup on the client
//! side is excluded by construction.
//!
//! The report (default `BENCH_serve_latency.json`) is re-parsed with
//! [`nvp_obs::json`] before it is written, so a malformed emit fails the
//! run rather than polluting CI artifacts. `--check` additionally asserts
//! sample counts and quantile sanity (p50 <= p99, non-zero service time)
//! and exits non-zero on violation.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nvp_core::engine::AnalysisEngine;
use nvp_obs::json::Json;
use nvp_obs::metrics::HistogramSnapshot;
use nvp_serve::{ServeConfig, Server};

/// Requests per cheap endpoint; enough samples for a stable p99 of a
/// microsecond-scale handler without turning the bench into a soak test.
const CHEAP_REQUESTS: usize = 200;

/// Jobs submitted through the full analyze pipeline. After the first
/// solve the engine answers from cache, so these measure the service
/// path, not the solver.
const JOBS: usize = 25;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_serve_latency.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: serve_latency [--out FILE] [--check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`; see --help");
                return ExitCode::FAILURE;
            }
        }
    }

    // The daemon is always quiet; route its per-request lines away from
    // the bench output.
    nvp_obs::sink::set_quiet(true);
    let server = match Server::bind(
        Arc::new(AnalysisEngine::new()),
        "127.0.0.1:0",
        ServeConfig::default(),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind the bench server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    let runner = server.clone();
    let run_thread = std::thread::spawn(move || runner.run());

    // Warm-up: the first analyze pays the real solve; everything after
    // answers from the chain cache. Not measured separately — it lands in
    // the same histograms, which is why the check gates quantiles, not
    // maxima.
    let warm = submit_and_await(addr);
    if let Err(e) = warm {
        eprintln!("warm-up job failed: {e}");
        return ExitCode::FAILURE;
    }

    for _ in 0..CHEAP_REQUESTS {
        let _ = roundtrip(addr, "GET", "/healthz", None);
    }
    for _ in 0..CHEAP_REQUESTS {
        let _ = roundtrip(addr, "GET", "/metrics", None);
    }
    for _ in 0..JOBS {
        if let Err(e) = submit_and_await(addr) {
            eprintln!("bench job failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let snapshots = server.latency_snapshots();
    server.shutdown();
    let _ = run_thread.join();

    let report = render_report(&snapshots);
    let parsed = match Json::parse(&report) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("emitted report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for (name, snapshot) in &snapshots {
        if snapshot.count == 0 {
            continue;
        }
        println!(
            "{name}: {} requests, p50 <= {:.1} us, p99 <= {:.1} us",
            snapshot.count,
            snapshot.quantile_upper_bound(0.5) as f64 / 1e3,
            snapshot.quantile_upper_bound(0.99) as f64 / 1e3,
        );
    }
    println!("wrote {out}");

    if check && !run_checks(&snapshots, &parsed) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One `POST /v1/analyze` submission polled to its terminal state.
fn submit_and_await(addr: SocketAddr) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(120);
    let id = loop {
        let reply = roundtrip(addr, "POST", "/v1/analyze", Some("{}"))?;
        if reply.status == 429 || reply.status == 503 {
            if Instant::now() >= deadline {
                return Err("submission never admitted".into());
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        if reply.status != 202 {
            return Err(format!("submit answered {}: {}", reply.status, reply.body));
        }
        let doc = Json::parse(&reply.body).map_err(|e| format!("bad submit body: {e}"))?;
        break doc
            .get("job")
            .and_then(Json::as_u64)
            .ok_or("submit body has no job id")?;
    };
    loop {
        let reply = roundtrip(addr, "GET", &format!("/v1/jobs/{id}"), None)?;
        if reply.status != 200 {
            return Err(format!("job poll answered {}", reply.status));
        }
        let doc = Json::parse(&reply.body).map_err(|e| format!("bad job body: {e}"))?;
        match doc.get("status").and_then(Json::as_str) {
            Some("done") => return Ok(()),
            Some("failed") => return Err(format!("job {id} failed: {}", reply.body)),
            _ if Instant::now() >= deadline => return Err(format!("job {id} stuck")),
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

struct Reply {
    status: u16,
    body: String,
}

/// One request on its own connection (`Connection: close`), read to EOF.
fn roundtrip(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<Reply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut raw = format!("{method} {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n");
    match body {
        Some(body) => {
            let _ = write!(raw, "Content-Length: {}\r\n\r\n{body}", body.len());
        }
        None => raw.push_str("\r\n"),
    }
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header terminator in {text:?}"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line in {head:?}"))?;
    Ok(Reply {
        status,
        body: body.to_owned(),
    })
}

fn render_report(snapshots: &[(&'static str, HistogramSnapshot)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"nvp-bench/serve-latency/v1\",\n");
    let _ = writeln!(out, "  \"cheap_requests\": {CHEAP_REQUESTS},");
    let _ = writeln!(out, "  \"jobs\": {JOBS},");
    out.push_str("  \"endpoints\": {\n");
    let mut first = true;
    for (name, snapshot) in snapshots {
        if snapshot.count == 0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let mean = snapshot.sum as f64 / snapshot.count as f64;
        let _ = write!(
            out,
            concat!(
                "    \"{}\": {{\n",
                "      \"count\": {},\n",
                "      \"mean_nanos\": {:.1},\n",
                "      \"p50_nanos\": {},\n",
                "      \"p99_nanos\": {}\n",
                "    }}"
            ),
            name,
            snapshot.count,
            mean,
            snapshot.quantile_upper_bound(0.5),
            snapshot.quantile_upper_bound(0.99),
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// `--check` assertions; each failure prints its own diagnostic.
fn run_checks(snapshots: &[(&'static str, HistogramSnapshot)], parsed: &Json) -> bool {
    let mut ok = true;
    let mut fail = |message: String| {
        eprintln!("check failed: {message}");
        ok = false;
    };
    let expectations: [(&str, u64); 4] = [
        ("healthz", CHEAP_REQUESTS as u64),
        ("metrics", CHEAP_REQUESTS as u64),
        ("analyze", JOBS as u64),
        // One 200 per terminal poll at minimum; retries only add samples.
        ("jobs", JOBS as u64),
    ];
    for (wanted, floor) in expectations {
        let Some((_, snapshot)) = snapshots.iter().find(|(name, _)| *name == wanted) else {
            fail(format!("endpoint {wanted} missing from the snapshots"));
            continue;
        };
        if snapshot.count < floor {
            fail(format!(
                "endpoint {wanted}: {} samples, expected at least {floor}",
                snapshot.count
            ));
        }
        let p50 = snapshot.quantile_upper_bound(0.5);
        let p99 = snapshot.quantile_upper_bound(0.99);
        if p50 == 0 {
            fail(format!("endpoint {wanted}: zero p50 service time"));
        }
        if p50 > p99 {
            fail(format!("endpoint {wanted}: p50 {p50} above p99 {p99}"));
        }
        let in_report = parsed
            .get("endpoints")
            .and_then(|e| e.get(wanted))
            .and_then(|e| e.get("p99_nanos"))
            .and_then(Json::as_u64);
        if in_report != Some(p99) {
            fail(format!(
                "endpoint {wanted}: report p99 {in_report:?} != snapshot {p99}"
            ));
        }
    }
    if ok {
        println!("all checks passed");
    }
    ok
}
