//! Result types shared by the experiments, with CSV and markdown rendering.

use std::fmt::Write as _;

/// A named data series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedSeries {
    /// Curve label (e.g. "six-version w/ rejuvenation").
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A family of curves over a common x-axis (one figure).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Label of the x-axis.
    pub axis_label: String,
    /// Label of the y-axis.
    pub value_label: String,
    /// The curves.
    pub series: Vec<NamedSeries>,
}

impl SweepSeries {
    /// Renders the series as CSV: one `x` column plus one column per curve.
    /// Curves are aligned by point index (all sweeps here share the x grid).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.axis_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        out.push('\n');
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for row in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(row).map(|&(x, _)| x));
            let _ = match x {
                Some(x) => write!(out, "{x}"),
                None => write!(out, ""),
            };
            for s in &self.series {
                match s.points.get(row) {
                    Some(&(_, y)) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the series as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "| {} |", self.axis_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for row in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(row).map(|&(x, _)| x));
            let _ = match x {
                Some(x) => write!(out, "| {x:.4} |"),
                None => write!(out, "| |"),
            };
            for s in &self.series {
                match s.points.get(row) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y:.6} |");
                    }
                    None => {
                        let _ = write!(out, " |");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// One claim from the paper checked against the reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimCheck {
    /// What the paper states.
    pub claim: String,
    /// The paper's quantitative value, as text (units included).
    pub paper: String,
    /// The reproduction's measured value, as text.
    pub measured: String,
    /// Whether the claim's *shape* holds in the reproduction.
    pub holds: bool,
}

impl ClaimCheck {
    /// Renders one markdown table row.
    pub fn to_markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {} |\n",
            self.claim,
            self.paper,
            self.measured,
            if self.holds { "✅" } else { "❌" }
        )
    }
}

/// Renders a claims table in markdown.
pub fn claims_table(claims: &[ClaimCheck]) -> String {
    let mut out = String::from("| claim | paper | measured | holds |\n|---|---|---|---|\n");
    for c in claims {
        out.push_str(&c.to_markdown_row());
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> SweepSeries {
        SweepSeries {
            axis_label: "x".into(),
            value_label: "E[R]".into(),
            series: vec![
                NamedSeries {
                    name: "a".into(),
                    points: vec![(1.0, 0.5), (2.0, 0.6)],
                },
                NamedSeries {
                    name: "b,with comma".into(),
                    points: vec![(1.0, 0.7), (2.0, 0.8)],
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = demo().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,a,\"b,with comma\"");
        assert_eq!(lines[1], "1,0.5,0.7");
        assert_eq!(lines[2], "2,0.6,0.8");
    }

    #[test]
    fn markdown_has_separator() {
        let md = demo().to_markdown();
        assert!(md.contains("|---|"));
        assert!(md.contains("0.500000"));
    }

    #[test]
    fn ragged_series_render_blanks() {
        let s = SweepSeries {
            axis_label: "x".into(),
            value_label: "y".into(),
            series: vec![
                NamedSeries {
                    name: "long".into(),
                    points: vec![(1.0, 0.1), (2.0, 0.2)],
                },
                NamedSeries {
                    name: "short".into(),
                    points: vec![(1.0, 0.9)],
                },
            ],
        };
        let csv = s.to_csv();
        assert!(csv.lines().nth(2).unwrap().ends_with(','));
    }

    #[test]
    fn claim_rows_render_status() {
        let c = ClaimCheck {
            claim: "rejuvenation wins".into(),
            paper: ">13%".into(),
            measured: "14.1%".into(),
            holds: true,
        };
        let table = claims_table(&[c]);
        assert!(table.contains("✅"));
        assert!(table.contains("14.1%"));
    }
}
