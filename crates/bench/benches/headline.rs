//! Criterion bench for the §V-B headline computation (E[R_4v], E[R_6v]).
//!
//! Regenerates the paper's headline numbers and measures the analytic
//! pipeline's cost: net construction → reachability → steady state →
//! reward.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::analysis::{expected_reliability, SolverBackend};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use std::hint::black_box;

fn bench_headline(c: &mut Criterion) {
    let four = SystemParams::paper_four_version();
    let six = SystemParams::paper_six_version();

    // Assert the reproduced values once, so a broken build cannot publish
    // timings of a wrong computation.
    let r4 = expected_reliability(&four, RewardPolicy::FailedOnly, SolverBackend::Auto).unwrap();
    let r6 = expected_reliability(&six, RewardPolicy::FailedOnly, SolverBackend::Auto).unwrap();
    assert!((r4 - 0.8223487).abs() < 1e-6, "E[R_4v] = {r4}");
    assert!((r6 - 0.93464665).abs() < 0.005, "E[R_6v] = {r6}");

    let mut group = c.benchmark_group("headline");
    group.bench_function("four_version_ctmc", |b| {
        b.iter(|| {
            expected_reliability(
                black_box(&four),
                RewardPolicy::FailedOnly,
                SolverBackend::Auto,
            )
            .unwrap()
        })
    });
    group.bench_function("six_version_mrgp", |b| {
        b.iter(|| {
            expected_reliability(
                black_box(&six),
                RewardPolicy::FailedOnly,
                SolverBackend::Auto,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_headline);
criterion_main!(benches);
