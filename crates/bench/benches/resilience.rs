//! Criterion microbenches of the resilience layer's overhead: the
//! probability-vector guard at stage boundaries and the budget checks
//! threaded through exploration and the MRGP solve. The point is to show
//! the guards are cheap enough to keep on unconditionally.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::model;
use nvp_core::params::SystemParams;
use nvp_mrgp::SolveOptions;
use nvp_numerics::guard::guard_probability_vector;
use nvp_numerics::SolveBudget;
use std::hint::black_box;

fn bench_resilience(c: &mut Criterion) {
    let six = SystemParams::paper_six_version();
    let net = model::build_model(&six).unwrap();
    let graph = nvp_petri::reach::explore(&net, 100_000).unwrap();

    let mut group = c.benchmark_group("resilience");

    // Guard on a healthy vector of the six-version model's size.
    let n = graph.tangible_count();
    let healthy: Vec<f64> = vec![1.0 / n as f64; n];
    group.bench_function("guard_probability_vector", |b| {
        b.iter(|| {
            let mut v = healthy.clone();
            black_box(guard_probability_vector(&mut v, "bench", 1e-6).unwrap())
        })
    });

    // Budgeted vs unbudgeted exploration: the per-marking deadline check.
    group.bench_function("explore_unbudgeted", |b| {
        b.iter(|| black_box(nvp_petri::reach::explore(&net, 100_000).unwrap()))
    });
    let generous = SolveBudget::with_wall_clock_ms(3_600_000);
    group.bench_function("explore_budgeted", |b| {
        b.iter(|| {
            black_box(
                nvp_petri::reach::explore_with_stats_budgeted(&net, 100_000, &generous).unwrap(),
            )
        })
    });

    // Budgeted vs unbudgeted MRGP steady state.
    group.bench_function("mrgp_unbudgeted", |b| {
        b.iter(|| black_box(nvp_mrgp::steady_state(&graph).unwrap()))
    });
    group.bench_function("mrgp_budgeted", |b| {
        b.iter(|| {
            let options = SolveOptions {
                budget: SolveBudget::with_wall_clock_ms(3_600_000),
                ..SolveOptions::default()
            };
            black_box(nvp_mrgp::steady_state_with_options(&graph, &options).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
