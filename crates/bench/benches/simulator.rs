//! Criterion benches of the discrete-event simulator and the per-request
//! perception pipeline (events/requests per second of wall time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use nvp_core::state::SystemState;
use nvp_core::voting::VotingScheme;
use nvp_sim::dspn::{simulate_reward, SimOptions};
use nvp_sim::perception::EnsembleModel;
use nvp_sim::scenario::model_reward_fn;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let params = SystemParams::paper_six_version();
    let net = nvp_core::model::build_model(&params).unwrap();
    let reward = model_reward_fn(&net, &params, RewardPolicy::FailedOnly).unwrap();

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    // ~100k s of model time covers ~170 clock ticks plus fault events.
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("dspn_six_version_100ks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                simulate_reward(
                    &net,
                    &reward,
                    &SimOptions {
                        horizon: 100_000.0,
                        warmup: 1_000.0,
                        seed,
                        batches: 2,
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();

    let ensemble = EnsembleModel {
        p: 0.08,
        p_prime: 0.5,
        alpha: 0.5,
        scheme: VotingScheme::BftThreshold { threshold: 4 },
    };
    let mut group = c.benchmark_group("perception");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("ensemble_10k_requests", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(ensemble.run(SystemState::new(4, 2, 0), 10_000, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
