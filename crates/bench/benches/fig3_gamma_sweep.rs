//! Criterion bench regenerating Figure 3 (rejuvenation-interval sweep).
//!
//! One iteration produces the full reduced-resolution curve plus the
//! golden-section optimum search — the complete per-figure workload.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_bench::experiments::fig3;
use nvp_bench::Fidelity;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    // Validate the claim once before timing.
    let result = fig3::compute(Fidelity::Quick).unwrap();
    assert!(
        (300.0..=700.0).contains(&result.optimum.0),
        "interior optimum expected near 450-550 s, got {}",
        result.optimum.0
    );

    c.bench_function("fig3/gamma_sweep_and_optimum", |b| {
        b.iter(|| black_box(fig3::compute(Fidelity::Quick).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
);
criterion_main!(benches);
