//! Criterion bench of the chain cache: a reward-only sweep through a shared
//! [`AnalysisEngine`] versus the same sweep recomputing the chain at every
//! point.
//!
//! The alpha axis never enters the Petri net, so the cached sweep performs
//! exactly one model build + exploration + steady-state solve and then only
//! reward-vector dot products — the uncached variant repeats the chain
//! stage per point. The headline speedup (≥10× on the paper's six-version
//! model) is printed after the measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::analysis::{linspace, ParamAxis, SolverBackend};
use nvp_core::engine::AnalysisEngine;
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use std::hint::black_box;
use std::time::Instant;

const POINTS: usize = 16;

/// The cached sweep: one engine shared across the grid.
fn sweep_cached(params: &SystemParams, grid: &[f64]) -> Vec<(f64, f64)> {
    let engine = AnalysisEngine::new();
    engine
        .sweep(params, ParamAxis::Alpha, grid, RewardPolicy::FailedOnly)
        .unwrap()
}

/// The uncached sweep: a fresh engine per point, so every point pays for
/// the full chain stage.
fn sweep_uncached(params: &SystemParams, grid: &[f64]) -> Vec<(f64, f64)> {
    grid.iter()
        .map(|&v| {
            let p = ParamAxis::Alpha.apply(params, v);
            let engine = AnalysisEngine::new();
            let r = engine
                .expected_reliability(&p, RewardPolicy::FailedOnly, SolverBackend::Auto)
                .unwrap();
            (v, r)
        })
        .collect()
}

fn bench_engine_cache(c: &mut Criterion) {
    let params = SystemParams::paper_six_version();
    let grid = linspace(0.05, 0.95, POINTS);

    // The two variants must agree exactly before their times mean anything.
    let cached = sweep_cached(&params, &grid);
    let uncached = sweep_uncached(&params, &grid);
    assert_eq!(cached, uncached, "cache must not change results");

    let mut group = c.benchmark_group("engine_cache");
    group.bench_function("alpha_sweep_16pt_cached", |b| {
        b.iter(|| black_box(sweep_cached(&params, &grid)))
    });
    group.bench_function("alpha_sweep_16pt_uncached", |b| {
        b.iter(|| black_box(sweep_uncached(&params, &grid)))
    });
    group.finish();

    // Headline ratio, measured directly so it lands in the bench log.
    let reps = 3;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(sweep_cached(&params, &grid));
    }
    let cached_time = t.elapsed() / reps;
    let t = Instant::now();
    for _ in 0..reps {
        black_box(sweep_uncached(&params, &grid));
    }
    let uncached_time = t.elapsed() / reps;
    let speedup = uncached_time.as_secs_f64() / cached_time.as_secs_f64();
    println!(
        "engine_cache: {POINTS}-point reward-only sweep, cached {:.2} ms vs uncached {:.2} ms \
         => {speedup:.1}x speedup",
        cached_time.as_secs_f64() * 1e3,
        uncached_time.as_secs_f64() * 1e3,
    );
}

criterion_group!(benches, bench_engine_cache);
criterion_main!(benches);
