//! Criterion bench guarding the observability overhead budget: with tracing
//! compiled in but *disabled* (no `--trace-out`), the instrumentation must
//! cost less than 5% of an uncached analyze solve.
//!
//! The budget is checked by measurement, not by faith: one recorded pass
//! counts exactly how many span/event call sites the analyze pipeline hits,
//! a tight loop prices the disabled fast path per call, and the product —
//! the total instrumentation cost folded into one solve — is asserted to
//! stay under 5% of the measured solve time. The enabled-path time is
//! printed alongside for reference but carries no assertion: recording
//! allocates, and `--trace-out` users have opted into that.
//!
//! The serve daemon's *flight recorder* is always on, so its teed path gets
//! the same 5% budget, priced the same way (per-call cost with the ring
//! installed x call sites per solve). This section runs last: installing
//! the ring is irreversible in-process and would contaminate the
//! disabled-path numbers above.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::analysis::SolverBackend;
use nvp_core::engine::AnalysisEngine;
use nvp_core::params::SystemParams;
use nvp_core::reliability::ReliabilitySource;
use nvp_core::reward::RewardPolicy;
use std::hint::black_box;
use std::time::Instant;

/// One uncached headline analyze: a fresh engine per call so the chain cache
/// never hides the instrumented build/explore/solve/reward stages.
fn analyze_once() -> f64 {
    let engine = AnalysisEngine::new();
    let report = engine
        .analyze(
            &SystemParams::paper_six_version(),
            RewardPolicy::FailedOnly,
            ReliabilitySource::Auto,
            SolverBackend::Auto,
        )
        .unwrap();
    report.expected_reliability
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert!(
        !nvp_obs::trace::enabled(),
        "bench must start with tracing disabled"
    );

    // How long does one solve take with the instrumentation dormant?
    let reps = 5;
    let expected = analyze_once();
    let start = Instant::now();
    for _ in 0..reps {
        black_box(analyze_once());
    }
    let disabled_per_solve = start.elapsed() / reps;

    // How many instrumented call sites does that solve actually pass
    // through? Record one pass and count the records: every span and event
    // in the trace paid the (cheap) disabled check in the timing runs above.
    nvp_obs::trace::start_recording();
    let traced = analyze_once();
    let records = nvp_obs::trace::stop_recording();
    assert_eq!(
        traced.to_bits(),
        expected.to_bits(),
        "tracing must not perturb the result"
    );
    let call_sites = records.len().max(1);

    // Price the disabled fast path per call: a span guard plus an attribute
    // event, the two shapes the pipeline uses.
    let probes = 1_000_000u32;
    let start = Instant::now();
    for i in 0..probes {
        let mut span = nvp_obs::span("bench.disabled");
        span.record("i", u64::from(i));
        nvp_obs::event_with("bench.event", || vec![("i", u64::from(i).into())]);
        black_box(&span);
    }
    let per_call = start.elapsed() / probes;

    let overhead = per_call.as_secs_f64() * call_sites as f64;
    let fraction = overhead / disabled_per_solve.as_secs_f64();
    println!(
        "obs_overhead: {call_sites} instrumented call(s) per solve, \
         {per_call:?} per disabled call, solve {disabled_per_solve:?}, \
         modeled overhead {:.3}%",
        fraction * 100.0
    );
    assert!(
        fraction < 0.05,
        "disabled tracing must cost < 5% of an analyze solve; \
         modeled {:.3}% ({call_sites} calls x {per_call:?} over {disabled_per_solve:?})",
        fraction * 100.0
    );

    // Reference numbers only: what a recorded run costs.
    nvp_obs::trace::start_recording();
    let start = Instant::now();
    for _ in 0..reps {
        black_box(analyze_once());
    }
    let enabled_per_solve = start.elapsed() / reps;
    drop(nvp_obs::trace::stop_recording());
    println!(
        "obs_overhead: recorded solve {enabled_per_solve:?} \
         (disabled {disabled_per_solve:?})"
    );

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("analyze/tracing-disabled", |b| {
        b.iter(|| black_box(analyze_once()))
    });
    group.bench_function("analyze/tracing-enabled", |b| {
        nvp_obs::trace::start_recording();
        b.iter(|| black_box(analyze_once()));
        drop(nvp_obs::trace::stop_recording());
    });
    group.bench_function("analyze/flight-recorder", |b| {
        // First use of the ring in this process; every solve from here on
        // tees into it (which is the point: this is the always-on path).
        nvp_obs::recorder::install(nvp_obs::recorder::DEFAULT_CAPACITY);
        b.iter(|| black_box(analyze_once()));
    });
    group.finish();

    // The always-on budget: with the ring installed (and no collector),
    // each call site builds a record and pushes it into a fixed slot. Same
    // methodology as the disabled path — per-call price x call sites must
    // stay under 5% of a solve.
    assert!(
        nvp_obs::trace::enabled(),
        "flight install must have enabled capture"
    );
    let start = Instant::now();
    for i in 0..probes {
        let mut span = nvp_obs::span("bench.flight");
        span.record("i", u64::from(i));
        nvp_obs::event_with("bench.event", || vec![("i", u64::from(i).into())]);
        black_box(&span);
    }
    let per_flight_call = start.elapsed() / probes;
    let flight_overhead = per_flight_call.as_secs_f64() * call_sites as f64;
    let flight_fraction = flight_overhead / disabled_per_solve.as_secs_f64();
    println!(
        "obs_overhead: {per_flight_call:?} per flight-teed call, \
         modeled always-on overhead {:.3}%",
        flight_fraction * 100.0
    );
    assert!(
        flight_fraction < 0.05,
        "the always-on flight recorder must cost < 5% of an analyze solve; \
         modeled {:.3}% ({call_sites} calls x {per_flight_call:?} over \
         {disabled_per_solve:?})",
        flight_fraction * 100.0
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
);
criterion_main!(benches);
