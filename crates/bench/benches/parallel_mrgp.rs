//! Criterion bench measuring the parallel MRGP row stage on the Figure 3
//! gamma sweep: the same curve computed with a single worker and with the
//! full worker pool.
//!
//! Before timing, one pass validates the tentpole invariant (the curves are
//! bit-identical) and prints the measured serial/parallel speedup. On hosts
//! with at least four cores the speedup must reach 2x; on smaller hosts the
//! number is only recorded, since the pool degrades to the serial path.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::analysis::{linspace, ParamAxis};
use nvp_core::engine::AnalysisEngine;
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use nvp_numerics::{Jobs, WorkerPool};
use std::hint::black_box;
use std::time::Instant;

/// One fig3-style sweep with a fresh engine, so the chain cache never hides
/// the solve work between iterations.
fn sweep(jobs: Jobs, grid: &[f64]) -> Vec<(f64, f64)> {
    AnalysisEngine::new()
        .with_jobs(jobs)
        .sweep_parallel(
            &SystemParams::paper_six_version(),
            ParamAxis::RejuvenationInterval,
            grid,
            RewardPolicy::FailedOnly,
        )
        .unwrap()
}

fn bench_parallel_mrgp(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let pool = WorkerPool::global();
    pool.set_capacity(pool.capacity().max(cores));
    let grid = linspace(200.0, 3000.0, 8);

    let serial = sweep(Jobs::Fixed(1), &grid);
    let parallel = sweep(Jobs::Auto, &grid);
    assert_eq!(
        serial, parallel,
        "worker count must not change the fig3 curve"
    );

    let reps = 3;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(sweep(Jobs::Fixed(1), &grid));
    }
    let serial_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..reps {
        black_box(sweep(Jobs::Auto, &grid));
    }
    let parallel_time = start.elapsed();
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "parallel_mrgp: {cores} core(s), serial {serial_time:?}, \
         parallel {parallel_time:?}, speedup {speedup:.2}x"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x speedup on {cores} cores, measured {speedup:.2}x"
        );
    }

    let mut group = c.benchmark_group("parallel_mrgp");
    group.sample_size(10);
    group.bench_function("fig3_sweep/jobs=1", |b| {
        b.iter(|| black_box(sweep(Jobs::Fixed(1), &grid)))
    });
    group.bench_function("fig3_sweep/jobs=auto", |b| {
        b.iter(|| black_box(sweep(Jobs::Auto, &grid)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_mrgp
);
criterion_main!(benches);
