//! Criterion benches regenerating the four panels of Figure 4.
//!
//! Each bench runs one panel's two-system sweep at reduced resolution —
//! Figure 4 (a) mean time to compromise, (b) error dependency α, (c) healthy
//! inaccuracy p, (d) compromised inaccuracy p′.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_bench::experiments::fig4;
use nvp_core::analysis::{linspace, ParamAxis};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);

    let mttc_grid = [300.0, 1523.0, 6000.0];
    group.bench_function("a_mean_time_to_compromise", |b| {
        b.iter(|| black_box(fig4::panel(ParamAxis::MeanTimeToCompromise, &mttc_grid).unwrap()))
    });

    let alpha_grid = linspace(0.1, 1.0, 4);
    group.bench_function("b_alpha", |b| {
        b.iter(|| black_box(fig4::panel(ParamAxis::Alpha, &alpha_grid).unwrap()))
    });

    let p_grid = linspace(0.01, 0.2, 4);
    group.bench_function("c_healthy_inaccuracy", |b| {
        b.iter(|| black_box(fig4::panel(ParamAxis::HealthyInaccuracy, &p_grid).unwrap()))
    });

    let pp_grid = linspace(0.1, 0.8, 4);
    group.bench_function("d_compromised_inaccuracy", |b| {
        b.iter(|| black_box(fig4::panel(ParamAxis::CompromisedInaccuracy, &pp_grid).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
