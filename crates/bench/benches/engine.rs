//! Criterion microbenches of the analysis engine's stages: reachability
//! exploration, MRGP steady state, and reliability-function evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_core::model;
use nvp_core::params::SystemParams;
use nvp_core::reliability::{ReliabilityModel, ReliabilitySource};
use nvp_core::state::enumerate_states;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let six = SystemParams::paper_six_version();
    let net6 = model::build_model(&six).unwrap();
    let graph6 = nvp_petri::reach::explore(&net6, 100_000).unwrap();
    let nine = SystemParams::builder().n(9).f(2).build().unwrap();
    let net9 = model::build_model(&nine).unwrap();

    let mut group = c.benchmark_group("engine");
    group.bench_function("explore_six_version", |b| {
        b.iter(|| black_box(nvp_petri::reach::explore(&net6, 100_000).unwrap()))
    });
    group.bench_function("explore_nine_version", |b| {
        b.iter(|| black_box(nvp_petri::reach::explore(&net9, 100_000).unwrap()))
    });
    group.bench_function("mrgp_steady_state_six_version", |b| {
        b.iter(|| black_box(nvp_mrgp::steady_state(&graph6).unwrap()))
    });
    let model6 = ReliabilityModel::for_params(&six, ReliabilitySource::Auto).unwrap();
    group.bench_function("reliability_paper_six_all_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in enumerate_states(6) {
                acc += model6.reliability(black_box(s), 0.08, 0.5, 0.5).unwrap();
            }
            black_box(acc)
        })
    });
    let generic9 = ReliabilityModel::Generic { n: 9, threshold: 6 };
    group.bench_function("reliability_generic_nine_all_states", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in enumerate_states(9) {
                acc += generic9.reliability(black_box(s), 0.08, 0.5, 0.5).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
