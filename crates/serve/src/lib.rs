//! `nvp-serve` — a zero-dependency HTTP/1.1 analysis daemon.
//!
//! One warm [`AnalysisEngine`](nvp_core::engine::AnalysisEngine), many
//! clients: the daemon amortizes the engine's memoized chain stage (and an
//! optional persistent solve store) across every request, which is the
//! paper's long-lived perception-service story applied to the analysis
//! side. The implementation is `std`-only — `TcpListener`, a thread per
//! connection, and the workspace's own hardened JSON parser on the ingress.
//!
//! # Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/analyze` | submit a full analysis; returns `202` + job id |
//! | `POST /v1/sweep` | submit a parameter sweep; returns `202` + job id |
//! | `GET /v1/jobs/{id}` | job status and, once done, the result |
//! | `GET /v1/jobs/{id}/progress` | per-point progress journal (`?from=N`) |
//! | `GET /metrics` | Prometheus exposition (solver + `nvp_http_*` series) |
//! | `GET /healthz` | engine/store/pool/job-table health |
//!
//! Degraded results are service results: a fallback-answered analysis
//! returns `200` with the WARNING classification and half-width in the
//! body, mirroring the CLI's exit-code-2-with-output contract. Failure
//! statuses are reserved for requests the daemon could not serve at all
//! (`400` bad input, `404` unknown job, `413` oversized body, `429`
//! admission refusal, `500` contained panic, `503` draining).
//!
//! # Self-rejuvenation
//!
//! The daemon practices the paper's own medicine: a configurable
//! [`RejuvenationPolicy`] watches aging signals (jobs served, cycle age,
//! cache pressure, consecutive panics) and, when one trips — or when
//! SIGTERM/SIGINT arrives — the server *drains*: new submissions get
//! `503` + jittered `Retry-After`, in-flight jobs finish under a drain
//! deadline (overdue ones are cancelled through the engine's budget
//! flag), the store is fsynced, and then the engine is either swapped
//! fresh in-process or the process exits with the distinguished code
//! `75` for an external supervisor. The persistent solve store is the
//! memento that makes the renewed engine warm again.

// `deny` (not `forbid`) so the one signal-handler binding in
// [`signal`] can opt out explicitly; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod rejuvenate;
pub mod server;
pub mod signal;

pub use rejuvenate::{AgingSnapshot, RejuvenateMode, RejuvenationPolicy};
pub use server::{EngineFactory, ServeConfig, ServeOutcome, Server};
