//! Minimal HTTP/1.1 framing over blocking streams: request parsing with
//! hard resource caps, and response writing.
//!
//! This is deliberately a small subset of the protocol — `GET`/`POST`,
//! `Content-Length` bodies only (no chunked transfer), keep-alive — because
//! every feature is attack surface on a daemon that accepts untrusted
//! input. The caps are enforced *before* allocation: a `Content-Length`
//! over the body limit is rejected without reading a single body byte, and
//! header bytes are counted as they stream in.

use std::io::{self, BufRead, Write};

/// Cap on the combined request-line + header bytes of one request.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method token exactly as the client sent it. HTTP methods are
    /// case-sensitive (RFC 9110 §9.1), so routing matches the uppercase
    /// names only; a nonconforming lowercase `get` earns a `405`/`404`.
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

/// Why a request could not be read. Each protocol variant maps to one HTTP
/// status; `Io` means the connection itself died (no response possible).
#[derive(Debug)]
pub enum RequestError {
    /// Grammar violation → `400`.
    Malformed(String),
    /// Body-carrying method without `Content-Length` → `411`.
    LengthRequired,
    /// Declared body larger than the configured cap → `413`.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The enforced cap.
        limit: usize,
    },
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Transport failure or torn read; the connection is simply dropped.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Read one line (through `\n`), charging its bytes against `remaining`.
/// Returns `Ok(None)` on clean EOF at a line start.
fn read_line(
    reader: &mut dyn BufRead,
    remaining: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(RequestError::Malformed("truncated request head".into()));
        }
        let take = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            None => buf.len(),
        };
        if take > *remaining {
            return Err(RequestError::HeadTooLarge);
        }
        *remaining -= take;
        let done = buf[take - 1] == b'\n';
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if done {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Malformed("request head is not valid UTF-8".into()))
}

/// Read one request off `reader`. `Ok(None)` means the peer closed the
/// connection cleanly between requests (the normal end of keep-alive).
pub fn read_request(
    reader: &mut dyn BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, RequestError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(reader, &mut head_budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RequestError::Malformed(format!(
                "unsupported protocol {other:?}"
            )))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };

    let mut content_length: Option<usize> = None;
    let mut close = !http11;
    loop {
        let Some(line) = read_line(reader, &mut head_budget)? else {
            return Err(RequestError::Malformed("truncated request head".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                // Two Content-Length headers mean the peer and any proxy in
                // front of us may disagree about where the body ends — a
                // request-smuggling primitive, not a recoverable ambiguity.
                if content_length.is_some() {
                    return Err(RequestError::Malformed(
                        "duplicate content-length header".into(),
                    ));
                }
                let n: usize = value.parse().map_err(|_| {
                    RequestError::Malformed(format!("bad content-length {value:?}"))
                })?;
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // Chunked bodies would defeat the pre-read size cap.
                return Err(RequestError::Malformed(
                    "transfer-encoding is not supported; send content-length".into(),
                ));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    close = true;
                } else if v.contains("keep-alive") {
                    close = false;
                }
            }
            _ => {}
        }
    }

    let body = match content_length {
        Some(declared) => {
            if declared > max_body_bytes {
                return Err(RequestError::BodyTooLarge {
                    declared,
                    limit: max_body_bytes,
                });
            }
            let mut body = vec![0u8; declared];
            reader.read_exact(&mut body)?;
            body
        }
        None if method == "POST" || method == "PUT" => {
            return Err(RequestError::LengthRequired);
        }
        None => Vec::new(),
    };

    Ok(Some(Request {
        method: method.to_owned(),
        path,
        query,
        body,
        close,
    }))
}

/// One response to be written back.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header (seconds), for `429`s.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// Attach a `Retry-After` header.
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }
}

/// Standard reason phrase for the status codes the daemon produces.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Serialize `response` onto `stream`. `close` controls the `Connection`
/// header (and must match what the caller then does with the stream).
pub fn write_response(stream: &mut dyn Write, response: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("retry-after: {seconds}\r\n"));
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> Result<Option<Request>, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            "GET /v1/jobs/7/progress?from=3 HTTP/1.1\r\nHost: x\r\n\r\n",
            64,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/jobs/7/progress");
        assert_eq!(req.query.as_deref(), Some("from=3"));
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /v1/analyze HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
            64,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("", 64).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected_before_reading() {
        // Only the head is present: the cap must trip on the declared
        // length, not on actually receiving the bytes.
        let err = parse(
            "POST /v1/analyze HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            64,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RequestError::BodyTooLarge {
                declared: 999,
                limit: 64
            }
        ));
    }

    #[test]
    fn post_without_length_is_length_required() {
        let err = parse("POST /v1/analyze HTTP/1.1\r\n\r\n", 64).unwrap_err();
        assert!(matches!(err, RequestError::LengthRequired));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(&raw, 64).unwrap_err(),
            RequestError::HeadTooLarge
        ));
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Identical or conflicting values both go: last-one-wins parsing
        // behind a first-one-wins proxy is a smuggling vector.
        for raw in [
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}",
            "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
        ] {
            assert!(
                matches!(parse(raw, 64), Err(RequestError::Malformed(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn chunked_bodies_are_rejected() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 64).unwrap_err();
        assert!(matches!(err, RequestError::Malformed(_)));
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64)
            .unwrap()
            .unwrap();
        assert!(req.close);
        let req = parse("GET / HTTP/1.0\r\n\r\n", 64).unwrap().unwrap();
        assert!(req.close);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64)
            .unwrap()
            .unwrap();
        assert!(!req.close);
    }

    #[test]
    fn malformed_request_lines_error() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw, 64), Err(RequestError::Malformed(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn response_serialization_includes_retry_after() {
        let mut out = Vec::new();
        let resp = Response::json(429, "{}".into()).with_retry_after(2);
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
