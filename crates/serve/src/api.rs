//! Request/response bodies of the `nvp serve` JSON API.
//!
//! Request parsing is *strict*: unknown keys, wrong types, and
//! out-of-range values are errors, not silently-ignored noise — on a
//! network ingress a typo'd `"stepz"` must fail loudly rather than run a
//! 10-point default sweep. Responses are built as [`Json`] values and
//! serialized with [`Json::emit`], so everything the daemon sends parses
//! with the same hardened parser it reads with.

use nvp_core::analysis::{AnalysisReport, ParamAxis, SolverBackend};
use nvp_core::jobs::{JobOutcome, JobSnapshot, JobStatus};
use nvp_core::params::SystemParams;
use nvp_core::reward::RewardPolicy;
use nvp_obs::json::Json;

/// A parsed `POST /v1/analyze` request.
#[derive(Debug, Clone)]
pub struct AnalyzeSpec {
    /// System parameters (paper defaults with request overrides applied).
    pub params: SystemParams,
    /// Reward interpretation.
    pub policy: RewardPolicy,
    /// Solver backend (a `max_markings` cap selects the budgeted backend).
    pub backend: SolverBackend,
    /// Per-request deadline in milliseconds.
    pub budget_ms: Option<u64>,
}

/// Upper bound on the `steps` of one sweep request. The grid is
/// materialized up front (`steps` f64s) and each point is a full solve, so
/// an unbounded value is a remote allocation bomb: an allocation-failure
/// abort is not a panic and the connection supervisor cannot contain it.
pub const MAX_SWEEP_STEPS: usize = 100_000;

/// A parsed `POST /v1/sweep` request.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The analyze-level fields (params, policy, backend, deadline).
    pub base: AnalyzeSpec,
    /// Swept parameter.
    pub axis: ParamAxis,
    /// Grid start (inclusive).
    pub from: f64,
    /// Grid end (inclusive).
    pub to: f64,
    /// Grid size.
    pub steps: usize,
}

fn field_f64(value: &Json, key: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn field_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative safe integer"))
}

fn field_u32(value: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(value, key)?).map_err(|_| format!("`{key}` out of range"))
}

fn field_bool(value: &Json, key: &str) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` must be a boolean")),
    }
}

/// Apply one recognized top-level key shared by analyze and sweep bodies.
/// Returns `Ok(false)` if the key is not a shared one.
fn apply_common_key(
    key: &str,
    value: &Json,
    params: &mut SystemParams,
    policy: &mut RewardPolicy,
    budget_ms: &mut Option<u64>,
    max_markings: &mut Option<usize>,
    saw_n: &mut bool,
) -> Result<bool, String> {
    match key {
        "n" => {
            params.n = field_u32(value, key)?;
            *saw_n = true;
        }
        "f" => params.f = field_u32(value, key)?,
        "r" => params.r = field_u32(value, key)?,
        "rejuvenation" => params.rejuvenation = field_bool(value, key)?,
        "alpha" => params.alpha = field_f64(value, key)?,
        "p" => params.p = field_f64(value, key)?,
        "p_prime" => params.p_prime = field_f64(value, key)?,
        "mttc" => params.mean_time_to_compromise = field_f64(value, key)?,
        "mttf" => params.mean_time_to_failure = field_f64(value, key)?,
        "mttr" => params.mean_time_to_repair = field_f64(value, key)?,
        "interval" => params.rejuvenation_interval = field_f64(value, key)?,
        "policy" => {
            *policy = match value.as_str() {
                Some("failed-only") => RewardPolicy::FailedOnly,
                Some("as-written") => RewardPolicy::AsWritten,
                _ => return Err("`policy` must be \"failed-only\" or \"as-written\"".into()),
            };
        }
        "budget_ms" => *budget_ms = Some(field_u64(value, key)?),
        "max_markings" => {
            *max_markings = Some(
                usize::try_from(field_u64(value, key)?)
                    .map_err(|_| "`max_markings` out of range".to_owned())?,
            );
        }
        _ => return Ok(false),
    }
    Ok(true)
}

struct CommonSpec {
    spec: AnalyzeSpec,
    rest: Vec<(String, Json)>,
}

fn parse_common(body: &Json) -> Result<CommonSpec, String> {
    let Json::Obj(members) = body else {
        return Err("request body must be a JSON object".into());
    };
    let mut params = SystemParams::paper_six_version();
    let mut policy = RewardPolicy::FailedOnly;
    let mut budget_ms = None;
    let mut max_markings = None;
    let mut saw_n = false;
    let mut rest = Vec::new();
    for (key, value) in members {
        if !apply_common_key(
            key,
            value,
            &mut params,
            &mut policy,
            &mut budget_ms,
            &mut max_markings,
            &mut saw_n,
        )? {
            rest.push((key.clone(), value.clone()));
        }
    }
    // Same convention as the CLI: turning rejuvenation off without naming a
    // size selects the paper's four-version comparison system.
    if !params.rejuvenation && !saw_n {
        params.n = 4;
    }
    Ok(CommonSpec {
        spec: AnalyzeSpec {
            params,
            policy,
            backend: max_markings.map_or(SolverBackend::Auto, SolverBackend::Budget),
            budget_ms,
        },
        rest,
    })
}

/// Parse a `POST /v1/analyze` body.
pub fn parse_analyze(body: &Json) -> Result<AnalyzeSpec, String> {
    let common = parse_common(body)?;
    if let Some((key, _)) = common.rest.first() {
        return Err(format!("unknown key `{key}` for analyze"));
    }
    Ok(common.spec)
}

/// Parse a `POST /v1/sweep` body.
pub fn parse_sweep(body: &Json) -> Result<SweepSpec, String> {
    let common = parse_common(body)?;
    let mut axis = None;
    let mut from = None;
    let mut to = None;
    let mut steps = 10usize;
    for (key, value) in &common.rest {
        match key.as_str() {
            "axis" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| "`axis` must be a string".to_owned())?;
                axis = Some(ParamAxis::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown axis `{name}` (gamma | mttc | mttf | mttr | alpha | p | pprime)"
                    )
                })?);
            }
            "from" => from = Some(field_f64(value, key)?),
            "to" => to = Some(field_f64(value, key)?),
            "steps" => {
                steps = usize::try_from(field_u64(value, key)?)
                    .map_err(|_| "`steps` out of range".to_owned())?;
            }
            other => return Err(format!("unknown key `{other}` for sweep")),
        }
    }
    let (Some(axis), Some(from), Some(to)) = (axis, from, to) else {
        return Err("sweep requires `axis`, `from` and `to`".into());
    };
    // The parser already rejects non-finite numbers; ordering and grid size
    // still need validating.
    if from >= to {
        return Err(format!(
            "sweep requires an ascending range `from < to`; got from {from} >= to {to}"
        ));
    }
    if steps < 2 {
        return Err(format!(
            "sweep requires `steps` >= 2 to cover [{from}, {to}]; got {steps}"
        ));
    }
    if steps > MAX_SWEEP_STEPS {
        return Err(format!(
            "sweep `steps` is capped at {MAX_SWEEP_STEPS}; got {steps}"
        ));
    }
    Ok(SweepSpec {
        base: common.spec,
        axis,
        from,
        to,
        steps,
    })
}

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// `202` body for a freshly submitted job.
pub fn job_accepted(id: u64) -> Json {
    obj(vec![
        ("job", Json::Num(id as f64)),
        ("status", Json::Str("queued".to_owned())),
        ("poll", Json::Str(format!("/v1/jobs/{id}"))),
        ("progress", Json::Str(format!("/v1/jobs/{id}/progress"))),
    ])
}

/// The degraded-result block shared by analyze results and the CLI's
/// WARNING line: same classification, same half-width, but carried in the
/// body — a degraded service answer is `200`, never an error status.
fn degraded_block(report: &AnalysisReport) -> (Json, Json) {
    match &report.degraded {
        Some(d) => (
            obj(vec![
                ("method", Json::Str(d.method.to_string())),
                ("reason", Json::Str(d.reason.clone())),
                (
                    "reliability_half_width",
                    Json::Num(d.reliability_half_width),
                ),
            ]),
            Json::Str(format!(
                "WARNING: degraded result ({}): {}",
                d.method, d.reason
            )),
        ),
        None => (Json::Null, Json::Null),
    }
}

/// `GET /v1/jobs/{id}` body.
pub fn job_status(snapshot: &JobSnapshot) -> Json {
    let mut members = vec![
        ("job", Json::Num(snapshot.id as f64)),
        ("kind", Json::Str(snapshot.kind.label().to_owned())),
        ("status", Json::Str(snapshot.status.label().to_owned())),
        ("total_points", Json::Num(snapshot.total_points as f64)),
        (
            "completed_points",
            Json::Num(snapshot.completed_points as f64),
        ),
    ];
    match (&snapshot.outcome, &snapshot.error) {
        (Some(outcome), _) => match outcome.as_ref() {
            JobOutcome::Analyze(report) => {
                let (degraded, warning) = degraded_block(report);
                members.push((
                    "result",
                    obj(vec![
                        (
                            "expected_reliability",
                            Json::Num(report.expected_reliability),
                        ),
                        ("states", Json::Num(report.states.len() as f64)),
                        ("degraded", degraded),
                        ("warning", warning),
                    ]),
                ));
            }
            JobOutcome::Sweep {
                points,
                csv,
                degraded_points,
            } => {
                let pairs = points
                    .iter()
                    .map(|&(x, r)| Json::Arr(vec![Json::Num(x), Json::Num(r)]))
                    .collect();
                let warning = if *degraded_points > 0 {
                    Json::Str(format!(
                        "WARNING: {degraded_points} of {} points are degraded results",
                        points.len()
                    ))
                } else {
                    Json::Null
                };
                members.push((
                    "result",
                    obj(vec![
                        ("points", Json::Arr(pairs)),
                        ("csv", Json::Str(csv.clone())),
                        ("degraded_points", Json::Num(*degraded_points as f64)),
                        ("warning", warning),
                    ]),
                ));
            }
        },
        (None, Some(error)) => members.push(("error", Json::Str(error.clone()))),
        (None, None) => {}
    }
    obj(members)
}

/// `GET /v1/jobs/{id}/progress` body: journal records from `since` on.
pub fn job_progress(
    id: u64,
    status: JobStatus,
    total: usize,
    since: usize,
    records: &[nvp_core::engine::SweepPointRecord],
) -> Json {
    let points = records
        .iter()
        .map(|r| {
            obj(vec![
                ("index", Json::Num(r.index as f64)),
                ("x", Json::Num(r.x)),
                ("value", Json::Num(r.value)),
                ("degraded", Json::Bool(r.degraded)),
            ])
        })
        .collect();
    obj(vec![
        ("job", Json::Num(id as f64)),
        ("status", Json::Str(status.label().to_owned())),
        ("total_points", Json::Num(total as f64)),
        ("from", Json::Num(since as f64)),
        ("points", Json::Arr(points)),
    ])
}

/// A `{"error": ...}` body.
pub fn error_body(message: &str) -> String {
    obj(vec![("error", Json::Str(message.to_owned()))]).emit()
}

/// Assemble the sweep CSV exactly as `nvp sweep` writes it to stdout — the
/// header row uses the axis label and each point uses plain `f64` `Display`
/// formatting — so service results are byte-identical to the CLI path.
pub fn sweep_csv(axis: ParamAxis, points: &[(f64, f64)]) -> String {
    let mut csv = format!("{},expected_reliability\n", axis.label());
    for (x, r) in points {
        csv.push_str(&format!("{x},{r}\n"));
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn analyze_defaults_match_the_paper() {
        let spec = parse_analyze(&parse("{}")).unwrap();
        assert_eq!(spec.params, SystemParams::paper_six_version());
        assert_eq!(spec.policy, RewardPolicy::FailedOnly);
        assert!(spec.budget_ms.is_none());
    }

    #[test]
    fn analyze_overrides_apply() {
        let spec = parse_analyze(&parse(
            r#"{"n":4,"alpha":0.25,"policy":"as-written","budget_ms":500,"max_markings":10000}"#,
        ))
        .unwrap();
        assert_eq!(spec.params.n, 4);
        assert_eq!(spec.params.alpha, 0.25);
        assert_eq!(spec.policy, RewardPolicy::AsWritten);
        assert_eq!(spec.budget_ms, Some(500));
        assert!(matches!(spec.backend, SolverBackend::Budget(10000)));
    }

    #[test]
    fn no_rejuvenation_defaults_to_four_versions() {
        let spec = parse_analyze(&parse(r#"{"rejuvenation":false}"#)).unwrap();
        assert_eq!(spec.params.n, 4);
        let spec = parse_analyze(&parse(r#"{"rejuvenation":false,"n":6}"#)).unwrap();
        assert_eq!(spec.params.n, 6);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(parse_analyze(&parse(r#"{"stepz":3}"#)).is_err());
        assert!(parse_sweep(&parse(r#"{"axis":"alpha","from":0,"to":1,"bogus":true}"#)).is_err());
    }

    #[test]
    fn sweep_requires_a_valid_grid() {
        let ok = parse_sweep(&parse(r#"{"axis":"alpha","from":0.1,"to":0.9,"steps":5}"#)).unwrap();
        assert_eq!(ok.steps, 5);
        assert!(matches!(ok.axis, ParamAxis::Alpha));
        for bad in [
            r#"{"from":0,"to":1}"#,
            r#"{"axis":"alpha","from":1,"to":0}"#,
            r#"{"axis":"alpha","from":0,"to":1,"steps":1}"#,
            r#"{"axis":"nope","from":0,"to":1}"#,
        ] {
            assert!(parse_sweep(&parse(bad)).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn sweep_steps_are_capped() {
        // An uncapped `steps` reaches linspace as a Vec length: 2^53-1
        // would be an allocation-failure abort, not a 400.
        let at_cap = format!(r#"{{"axis":"alpha","from":0,"to":1,"steps":{MAX_SWEEP_STEPS}}}"#);
        assert_eq!(parse_sweep(&parse(&at_cap)).unwrap().steps, MAX_SWEEP_STEPS);
        for over in [MAX_SWEEP_STEPS as u64 + 1, 1_000_000_000, (1 << 53) - 1] {
            let body = format!(r#"{{"axis":"alpha","from":0,"to":1,"steps":{over}}}"#);
            let err = parse_sweep(&parse(&body)).unwrap_err();
            assert!(err.contains("capped"), "steps {over}: {err}");
        }
    }

    #[test]
    fn budget_rejects_unsafe_integers() {
        // 2^64 would silently saturate under the old as_u64; the hardened
        // ingress refuses it end to end.
        assert!(parse_analyze(&parse(r#"{"budget_ms":18446744073709551616}"#)).is_err());
        assert!(parse_analyze(&parse(r#"{"budget_ms":9007199254740993}"#)).is_err());
    }

    #[test]
    fn csv_matches_cli_shape() {
        let csv = sweep_csv(ParamAxis::Alpha, &[(0.1, 0.9375), (0.2, 0.9)]);
        assert_eq!(csv, "alpha,expected_reliability\n0.1,0.9375\n0.2,0.9\n");
    }
}
