//! Stdlib-only SIGTERM/SIGINT hook for operator-initiated drain.
//!
//! The daemon must not die mid-job when an operator (or an init system)
//! asks it to stop: both signals set one process-wide flag, the server's
//! monitor thread notices it and runs the same graceful-drain path a
//! rejuvenation trigger uses. No signal-handling crate is pulled in — the
//! handler is a direct `extern "C"` binding to `signal(2)`, and the only
//! thing it does is a relaxed atomic store, which is async-signal-safe.
//!
//! On non-unix targets the hook is a no-op: [`install`] succeeds and
//! [`drain_requested`] simply never turns true via a signal.

// The one `unsafe` in the crate: registering the C signal handler.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; read by the server's monitor thread.
static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    /// `SIGINT` on every unix the workspace targets.
    const SIGINT: i32 = 2;
    /// `SIGTERM` likewise.
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)`. The previous-handler return value is ignored: the
        /// daemon installs exactly one handler, once.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe thing a handler may do here: flip the
        // flag. Draining, logging and fsync all happen on normal threads.
        super::DRAIN_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the libc prototype; `on_signal` is a
        // non-unwinding `extern "C" fn(i32)` that only performs an atomic
        // store, so it is a valid, async-signal-safe handler.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    #[cfg(test)]
    pub(super) fn raise_sigterm() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: `raise(3)` with a signal whose handler `install` set.
        unsafe {
            raise(SIGTERM);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent; call it from the
/// binary entry point, not from library code an embedder might not want
/// touching process-wide signal disposition.
pub fn install() {
    imp::install();
}

/// `true` once a SIGTERM or SIGINT has been delivered after [`install`].
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn a_delivered_sigterm_sets_the_drain_flag_instead_of_killing_us() {
        install();
        imp::raise_sigterm();
        // The handler runs synchronously on `raise`; reaching this line at
        // all proves the default terminate disposition was replaced.
        assert!(drain_requested());
    }
}
