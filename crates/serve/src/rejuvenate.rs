//! Rejuvenation policy for the daemon itself.
//!
//! The source paper's thesis is that periodic rejuvenation arrests the
//! reliability decay caused by software aging. The daemon applies that
//! policy to *its own* long-lived process: a [`RejuvenationPolicy`]
//! watches observable aging signals (jobs served, cycle age, cache
//! pressure, consecutive panics) and, when one trips, the server drains
//! and renews its engine — cheaply, because the persistent solve store is
//! the memento that makes a fresh engine warm again.
//!
//! The policy itself is pure: the server samples an [`AgingSnapshot`] and
//! asks [`RejuvenationPolicy::tripped`] for a verdict, which keeps every
//! trigger rule unit-testable without sockets or clocks.

use std::time::Duration;

/// What the server does once a rejuvenation drain has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejuvenateMode {
    /// Swap a fresh engine in-process: zero dropped connections, warm
    /// restart from the persistent store. The default.
    #[default]
    Swap,
    /// Stop serving and exit with the distinguished code `75`
    /// (`EX_TEMPFAIL`), telling an external supervisor loop to restart
    /// the whole process — the strongest form of rejuvenation.
    Exit,
}

impl RejuvenateMode {
    /// Parses a `--rejuvenate-mode` value (`swap` or `exit`).
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(text: &str) -> Result<RejuvenateMode, String> {
        match text {
            "swap" => Ok(RejuvenateMode::Swap),
            "exit" => Ok(RejuvenateMode::Exit),
            other => Err(format!(
                "bad rejuvenate mode `{other}` (expected `swap` or `exit`)"
            )),
        }
    }
}

/// Aging signals sampled by the server and judged by
/// [`RejuvenationPolicy::tripped`]. All values are relative to the start
/// of the current engine cycle (process start, or the last rejuvenation).
#[derive(Debug, Clone, Copy, Default)]
pub struct AgingSnapshot {
    /// Jobs that reached a terminal state this cycle.
    pub jobs_this_cycle: u64,
    /// Seconds since the cycle started.
    pub cycle_secs: u64,
    /// Chain solutions currently held in the engine's memory cache.
    pub cache_entries: usize,
    /// Consecutive job-worker panics with no intervening success.
    pub panic_streak: u32,
}

/// When (and how) the daemon rejuvenates itself.
///
/// Every trigger is opt-in; the default policy never trips, so embedding
/// the server without configuring rejuvenation behaves exactly as before.
#[derive(Debug, Clone)]
pub struct RejuvenationPolicy {
    /// Trip after this many jobs have reached a terminal state this cycle.
    pub after_jobs: Option<u64>,
    /// Trip once the cycle is this many seconds old (time-based
    /// rejuvenation, the paper's classic interval policy).
    pub after_secs: Option<u64>,
    /// Trip when the engine's memory cache holds at least this many
    /// solutions (cache pressure as an aging proxy).
    pub cache_entries_pressure: Option<usize>,
    /// Trip after this many *consecutive* worker panics — a crash-looping
    /// engine is aged by definition.
    pub panic_streak: Option<u32>,
    /// Swap the engine in-process or exit for an external supervisor.
    pub mode: RejuvenateMode,
    /// How long a drain waits for in-flight jobs before cancelling them
    /// through the engine's budget flag.
    pub drain_deadline: Duration,
}

impl Default for RejuvenationPolicy {
    fn default() -> Self {
        RejuvenationPolicy {
            after_jobs: None,
            after_secs: None,
            cache_entries_pressure: None,
            panic_streak: None,
            mode: RejuvenateMode::Swap,
            drain_deadline: Duration::from_secs(30),
        }
    }
}

impl RejuvenationPolicy {
    /// `true` if any trigger is configured; a disabled policy is never
    /// consulted, so the hot path pays nothing for it.
    pub fn is_enabled(&self) -> bool {
        self.after_jobs.is_some()
            || self.after_secs.is_some()
            || self.cache_entries_pressure.is_some()
            || self.panic_streak.is_some()
    }

    /// Judges `snapshot` against the configured triggers. Returns the name
    /// of the first tripped trigger (stable, log-friendly), or `None`.
    pub fn tripped(&self, snapshot: &AgingSnapshot) -> Option<&'static str> {
        if self
            .panic_streak
            .is_some_and(|cap| snapshot.panic_streak >= cap)
        {
            return Some("panic_streak");
        }
        if self
            .after_jobs
            .is_some_and(|cap| snapshot.jobs_this_cycle >= cap)
        {
            return Some("after_jobs");
        }
        if self
            .after_secs
            .is_some_and(|cap| snapshot.cycle_secs >= cap)
        {
            return Some("after_secs");
        }
        if self
            .cache_entries_pressure
            .is_some_and(|cap| snapshot.cache_entries >= cap)
        {
            return Some("cache_pressure");
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_policy_is_disabled_and_never_trips() {
        let policy = RejuvenationPolicy::default();
        assert!(!policy.is_enabled());
        let aged = AgingSnapshot {
            jobs_this_cycle: u64::MAX,
            cycle_secs: u64::MAX,
            cache_entries: usize::MAX,
            panic_streak: u32::MAX,
        };
        assert_eq!(policy.tripped(&aged), None);
    }

    #[test]
    fn each_trigger_trips_at_its_threshold_not_below() {
        let policy = RejuvenationPolicy {
            after_jobs: Some(10),
            ..RejuvenationPolicy::default()
        };
        assert!(policy.is_enabled());
        let mut snapshot = AgingSnapshot {
            jobs_this_cycle: 9,
            ..AgingSnapshot::default()
        };
        assert_eq!(policy.tripped(&snapshot), None);
        snapshot.jobs_this_cycle = 10;
        assert_eq!(policy.tripped(&snapshot), Some("after_jobs"));

        let policy = RejuvenationPolicy {
            after_secs: Some(60),
            ..RejuvenationPolicy::default()
        };
        let snapshot = AgingSnapshot {
            cycle_secs: 60,
            ..AgingSnapshot::default()
        };
        assert_eq!(policy.tripped(&snapshot), Some("after_secs"));

        let policy = RejuvenationPolicy {
            cache_entries_pressure: Some(100),
            ..RejuvenationPolicy::default()
        };
        let snapshot = AgingSnapshot {
            cache_entries: 100,
            ..AgingSnapshot::default()
        };
        assert_eq!(policy.tripped(&snapshot), Some("cache_pressure"));
    }

    #[test]
    fn a_panic_streak_outranks_every_other_trigger() {
        // A crash-looping engine must be renewed first; the reason string
        // tells the operator which pathology actually fired.
        let policy = RejuvenationPolicy {
            after_jobs: Some(1),
            panic_streak: Some(3),
            ..RejuvenationPolicy::default()
        };
        let snapshot = AgingSnapshot {
            jobs_this_cycle: 5,
            panic_streak: 3,
            ..AgingSnapshot::default()
        };
        assert_eq!(policy.tripped(&snapshot), Some("panic_streak"));
    }

    #[test]
    fn mode_parsing_accepts_swap_and_exit_only() {
        assert_eq!(RejuvenateMode::parse("swap").unwrap(), RejuvenateMode::Swap);
        assert_eq!(RejuvenateMode::parse("exit").unwrap(), RejuvenateMode::Exit);
        assert!(RejuvenateMode::parse("restart").is_err());
        assert_eq!(RejuvenateMode::default(), RejuvenateMode::Swap);
    }
}
