//! The daemon: accept loop, connection supervision, routing, and job
//! execution against one shared [`AnalysisEngine`].
//!
//! Supervision mirrors the engine's own rejuvenation machinery at the
//! connection layer: every request handler runs under `catch_unwind`, so a
//! panicked handler costs that one request (a `500` and a counter bump),
//! never the daemon. Job threads are wrapped the same way — a panicking
//! solve fails its job, and the table keeps serving. Admission control
//! rides on the process-wide [`WorkerPool`]: a submission that cannot get a
//! permit is refused up front with `429` + `Retry-After` instead of piling
//! unbounded work onto a starved pool.

use std::io::{self, BufRead, BufReader, Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use nvp_core::analysis::linspace;
use nvp_core::engine::{AnalysisEngine, SweepPointRecord};
use nvp_core::jobs::{JobId, JobKind, JobOutcome, JobTable};
use nvp_core::reliability::ReliabilitySource;
use nvp_numerics::pool::{Permits, WorkerPool};
use nvp_obs::json::Json;
use nvp_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
use nvp_obs::recorder::{self, DumpContext, FlightRecorder};
use nvp_obs::sink;
use nvp_obs::trace::{self, SpanHandle};

use crate::api::{self, AnalyzeSpec, SweepSpec};
use crate::http::{self, Request, RequestError, Response};
use crate::rejuvenate::{AgingSnapshot, RejuvenateMode, RejuvenationPolicy};
use crate::signal;

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cap on request-body bytes, enforced before the body is read.
    pub max_body_bytes: usize,
    /// Cap on concurrently served connections; excess connections get `503`.
    pub max_connections: usize,
    /// Per-read socket timeout (also bounds keep-alive idle time).
    pub read_timeout: Duration,
    /// Cap on the total time spent reading one request (head + body),
    /// measured from its first byte. The per-read timeout alone is a
    /// slow-loris invitation: a client trickling one byte every 29 seconds
    /// never trips a single read yet holds a `max_connections` slot
    /// forever. Connections that exceed this are dropped.
    pub request_timeout: Duration,
    /// Server-side default deadline for jobs submitted without their own
    /// `budget_ms`. `None` (the default, for CLI parity) lets such jobs
    /// run unbounded; a value turns a runaway job into a typed,
    /// terminal failure instead of a permit pinned across a drain. A
    /// request's own `budget_ms` always wins.
    pub job_deadline_ms: Option<u64>,
    /// When (and how) the daemon drains and renews its engine; the
    /// default policy never trips.
    pub rejuvenation: RejuvenationPolicy,
    /// Directory flight-recorder dumps are written to on panic-in-job,
    /// drain entry, and rejuvenation (created on first dump). `None`
    /// disables dump files; the in-memory recorder and the
    /// `/v1/debug/recorder` endpoint stay live either way.
    pub flight_dir: Option<PathBuf>,
    /// Capacity of the flight-recorder ring (most recent spans/events
    /// kept). The process has one ring; the first server to bind sizes it.
    pub flight_records: usize,
    /// Emit one structured JSON access-log line per request through the
    /// stderr sink instead of the human-readable line.
    pub access_log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_body_bytes: 1 << 20,
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(60),
            job_deadline_ms: None,
            rejuvenation: RejuvenationPolicy::default(),
            flight_dir: None,
            flight_records: recorder::DEFAULT_CAPACITY,
            access_log: false,
        }
    }
}

/// The fixed endpoint vocabulary for per-endpoint telemetry. Unknown paths
/// collapse into `other` so label cardinality is bounded no matter what
/// clients probe for.
const ENDPOINTS: [&str; 8] = [
    "healthz",
    "metrics",
    "analyze",
    "sweep",
    "jobs",
    "debug_recorder",
    "debug_aging",
    "other",
];
const STATUS_CLASSES: [&str; 4] = ["2xx", "3xx", "4xx", "5xx"];

/// Index into [`ENDPOINTS`] for a request path.
fn endpoint_index(path: &str) -> usize {
    match path {
        "/healthz" => 0,
        "/metrics" => 1,
        "/v1/analyze" => 2,
        "/v1/sweep" => 3,
        "/v1/debug/recorder" => 5,
        "/v1/debug/aging" => 6,
        _ if path.starts_with("/v1/jobs/") => 4,
        _ => 7,
    }
}

/// Index into [`STATUS_CLASSES`] for a status code (1xx — which the daemon
/// never sends — lands in `2xx` rather than minting a fifth class).
fn status_class_index(status: u16) -> usize {
    match status / 100 {
        0..=2 => 0,
        3 => 1,
        4 => 2,
        _ => 3,
    }
}

/// Pre-rendered static label bodies for every endpoint × status-class
/// series, built once per process (the registry requires `'static` label
/// strings; leaking 32 short strings once is the zero-dep way to get them).
fn series_labels() -> &'static [[&'static str; 4]; 8] {
    static LABELS: OnceLock<[[&'static str; 4]; 8]> = OnceLock::new();
    LABELS.get_or_init(|| {
        std::array::from_fn(|e| {
            std::array::from_fn(|c| {
                let body = format!(
                    "endpoint=\"{}\",status=\"{}\"",
                    ENDPOINTS[e], STATUS_CLASSES[c]
                );
                &*Box::leak(body.into_boxed_str())
            })
        })
    })
}

/// Pre-rendered per-endpoint label bodies (latency histograms).
fn endpoint_labels() -> &'static [&'static str; 8] {
    static LABELS: OnceLock<[&'static str; 8]> = OnceLock::new();
    LABELS.get_or_init(|| {
        std::array::from_fn(|e| {
            &*Box::leak(format!("endpoint=\"{}\"", ENDPOINTS[e]).into_boxed_str())
        })
    })
}

struct HttpMetrics {
    requests: Counter,
    bad_requests: Counter,
    rejected: Counter,
    panics: Counter,
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    request_nanos: Histogram,
    active_connections: Gauge,
    /// `nvp_http_requests_total{endpoint=...,status=...}` split.
    requests_by: [[Counter; 4]; 8],
    /// `nvp_http_request_nanos{endpoint=...}` latency split.
    nanos_by: [Histogram; 8],
}

impl HttpMetrics {
    /// Registered on the *server's own* registry — not the engine's — so
    /// HTTP counters survive an engine swap during rejuvenation.
    /// `/metrics` concatenates both expositions.
    ///
    /// The unlabeled `nvp_http_requests_total` / `nvp_http_request_nanos`
    /// aggregates are kept alongside the labeled splits for dashboard
    /// compatibility.
    fn register(m: &MetricsRegistry) -> Self {
        let series = series_labels();
        let per_endpoint = endpoint_labels();
        Self {
            requests: m.counter("nvp_http_requests_total"),
            bad_requests: m.counter("nvp_http_bad_requests_total"),
            rejected: m.counter("nvp_http_rejected_total"),
            panics: m.counter("nvp_http_panics_total"),
            jobs_submitted: m.counter("nvp_http_jobs_submitted_total"),
            jobs_completed: m.counter("nvp_http_jobs_completed_total"),
            jobs_failed: m.counter("nvp_http_jobs_failed_total"),
            request_nanos: m.histogram("nvp_http_request_nanos"),
            active_connections: m.gauge("nvp_http_active_connections"),
            requests_by: std::array::from_fn(|e| {
                std::array::from_fn(|c| m.counter_with("nvp_http_requests_total", series[e][c]))
            }),
            nanos_by: std::array::from_fn(|e| {
                m.histogram_with("nvp_http_request_nanos", per_endpoint[e])
            }),
        }
    }

    /// One observation per served request: aggregate and labeled series
    /// move together so they can never drift.
    fn observe(&self, endpoint: usize, status: u16, elapsed: Duration) {
        self.request_nanos.record_duration(elapsed);
        self.nanos_by[endpoint].record_duration(elapsed);
        self.requests_by[endpoint][status_class_index(status)].inc();
    }
}

/// Builds the replacement engine for a `swap`-mode rejuvenation. Without
/// one the server renews the current engine in place (cache cleared,
/// cancellation flag reset), which loses builder-applied configuration
/// held only in closures — the CLI installs a factory so the fresh engine
/// is configured identically to the first.
pub type EngineFactory = Arc<dyn Fn() -> AnalysisEngine + Send + Sync>;

/// How the daemon leaves its serving state; returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A clean stop: [`Server::shutdown`], or an operator drain
    /// (SIGTERM/SIGINT) that completed. Exit `0`.
    Shutdown,
    /// An `exit`-mode rejuvenation drain completed; the process should
    /// exit with the distinguished code `75` so a supervisor loop
    /// restarts it.
    Rejuvenate,
}

/// Serving / draining, packed into an atomic.
const STATE_SERVING: u8 = 0;
const STATE_DRAINING: u8 = 1;

struct ServerInner {
    /// Swapped wholesale by a `swap`-mode rejuvenation; request handlers
    /// grab one `Arc` per use and never observe a half-swapped engine.
    engine: RwLock<Arc<AnalysisEngine>>,
    factory: Mutex<Option<EngineFactory>>,
    jobs: JobTable,
    config: ServeConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    stop: AtomicBool,
    /// Set by an `exit`-mode rejuvenation so [`Server::run`] can return
    /// [`ServeOutcome::Rejuvenate`] instead of a clean shutdown.
    exit_rejuvenate: AtomicBool,
    state: std::sync::atomic::AtomicU8,
    /// CAS guard: at most one drain runs at a time.
    drain_active: AtomicBool,
    /// The monitor thread is spawned once, by whichever `run` call
    /// starts first.
    monitor_started: AtomicBool,
    active: AtomicUsize,
    next_request: AtomicU64,
    metrics: HttpMetrics,
    /// Server-owned registry (HTTP series + rejuvenation counter);
    /// unlike the engine's registry it survives engine swaps.
    registry: MetricsRegistry,
    rejuvenations: Counter,
    started: Instant,
    /// Start of the current engine cycle (process start or the last
    /// rejuvenation); basis for the `after_secs` trigger.
    cycle_started: Mutex<Instant>,
    /// Jobs that reached a terminal state, over the daemon's lifetime.
    jobs_finished: AtomicU64,
    /// `jobs_finished` at the start of the current cycle.
    cycle_jobs_base: AtomicU64,
    /// Consecutive job-worker panics; any success resets it.
    panic_streak: AtomicU32,
    /// The process-global flight recorder (installed at bind time, shared
    /// if several servers coexist in one process).
    flight: Arc<FlightRecorder>,
    /// Sequence number for dump file names under `flight_dir`.
    flight_seq: AtomicU64,
}

impl ServerInner {
    /// The engine to use for this request/job. One `Arc` clone; a swap
    /// mid-job leaves the job on the engine it started with.
    fn engine(&self) -> Arc<AnalysisEngine> {
        Arc::clone(
            &self
                .engine
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_DRAINING
    }
}

/// A running (or ready-to-run) daemon around one shared engine. Cheap to
/// clone; all clones drive the same listener and job table.
#[derive(Clone)]
pub struct Server {
    inner: Arc<ServerInner>,
}

enum JobSpec {
    Analyze(AnalyzeSpec),
    Sweep(SweepSpec),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_owned()
    }
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) around a
    /// shared engine. The engine's metrics registry gains the `nvp_http_*`
    /// series.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(
        engine: Arc<AnalysisEngine>,
        addr: &str,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = MetricsRegistry::new();
        let metrics = HttpMetrics::register(&registry);
        let rejuvenations = registry.counter("nvp_engine_rejuvenations_total");
        // The always-on black box: every span/event from here on is teed
        // into the ring, so a postmortem exists even when nobody asked for
        // a trace in advance.
        let flight = recorder::install(config.flight_records);
        // A capacity-1 pool has zero grantable permits (the lone slot is
        // the implicit calling thread), which would make admission control
        // refuse every job forever on a single-core host. The daemon's
        // calling thread is the accept loop, not a worker, so guarantee at
        // least one real permit.
        let pool = WorkerPool::global();
        if pool.capacity() < 2 {
            pool.set_capacity(2);
        }
        Ok(Server {
            inner: Arc::new(ServerInner {
                engine: RwLock::new(engine),
                factory: Mutex::new(None),
                jobs: JobTable::new(),
                config,
                listener,
                local_addr,
                stop: AtomicBool::new(false),
                exit_rejuvenate: AtomicBool::new(false),
                state: std::sync::atomic::AtomicU8::new(STATE_SERVING),
                drain_active: AtomicBool::new(false),
                monitor_started: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                next_request: AtomicU64::new(0),
                metrics,
                registry,
                rejuvenations,
                started: Instant::now(),
                cycle_started: Mutex::new(Instant::now()),
                jobs_finished: AtomicU64::new(0),
                cycle_jobs_base: AtomicU64::new(0),
                panic_streak: AtomicU32::new(0),
                flight,
                flight_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves the actual port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Per-endpoint request-latency snapshots, in the same order as the
    /// endpoint vocabulary returned alongside each snapshot. The latency
    /// bench reads quantiles from these instead of re-parsing `/metrics`.
    pub fn latency_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        ENDPOINTS
            .iter()
            .zip(self.inner.metrics.nanos_by.iter())
            .map(|(name, histogram)| (*name, histogram.snapshot()))
            .collect()
    }

    /// Installs the closure that builds the replacement engine for
    /// `swap`-mode rejuvenations. Without one, a swap renews the current
    /// engine in place (cache cleared, cancellation reset).
    pub fn set_engine_factory(&self, factory: EngineFactory) {
        *self
            .inner
            .factory
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(factory);
    }

    /// Ask the accept loop to exit. Idempotent; wakes the loop with a
    /// throwaway connection so `run` returns promptly.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept. Failure is fine: the next real
        // connection would observe the flag instead.
        let _ = TcpStream::connect(self.inner.local_addr);
    }

    /// Starts a *graceful* stop: refuse new submissions (`503` +
    /// `Retry-After`), let in-flight jobs finish under the drain deadline
    /// (overdue ones are cancelled through the engine's budget flag and
    /// land as typed failures), fsync the store, then stop. This is the
    /// path SIGTERM/SIGINT take; [`Server::run`] returns
    /// [`ServeOutcome::Shutdown`].
    pub fn drain(&self) {
        begin_drain(&self.inner, DrainKind::Terminate, "operator");
    }

    /// Trips a rejuvenation drain right now, exactly as a configured
    /// trigger would: drain, then swap or exit per the policy's mode.
    pub fn rejuvenate(&self) {
        begin_drain(&self.inner, DrainKind::Rejuvenate, "manual");
    }

    /// Serve until [`Server::shutdown`] (or a drain completes). Each
    /// connection gets its own thread; handler panics are contained per
    /// request.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures (per-connection errors are absorbed).
    pub fn run(&self) -> std::io::Result<ServeOutcome> {
        self.start_monitor();
        loop {
            let (stream, _) = match self.inner.listener.accept() {
                Ok(conn) => conn,
                Err(_) if self.inner.stop.load(Ordering::SeqCst) => return Ok(self.outcome()),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // `Interrupted`: a signal landed mid-accept; the
                    // monitor thread turns the flag into a drain.
                    continue;
                }
                Err(e) => return Err(e),
            };
            if self.inner.stop.load(Ordering::SeqCst) {
                return Ok(self.outcome());
            }
            let inner = Arc::clone(&self.inner);
            let active = inner.active.fetch_add(1, Ordering::SeqCst) + 1;
            inner.metrics.active_connections.set(active as u64);
            if active > inner.config.max_connections {
                let mut stream = stream;
                let resp = Response::json(
                    503,
                    api::error_body("connection limit reached; retry shortly"),
                )
                .with_retry_after(retry_jitter(&format!("conn-{active}")));
                let _ = http::write_response(&mut stream, &resp, true);
                release_connection(&inner);
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("nvp-serve-conn".to_owned())
                .spawn(move || {
                    serve_connection(&inner, stream);
                    release_connection(&inner);
                });
            if let Err(e) = spawned {
                // Thread exhaustion: shed this connection, keep serving.
                sink::server("accept", &format!("cannot spawn connection thread: {e}"));
                release_connection(&self.inner);
            }
        }
    }

    /// How `run` is ending, once the stop flag is set.
    fn outcome(&self) -> ServeOutcome {
        if self.inner.exit_rejuvenate.load(Ordering::SeqCst) {
            ServeOutcome::Rejuvenate
        } else {
            ServeOutcome::Shutdown
        }
    }

    /// Spawns (once) the aging monitor: a low-frequency poll that turns a
    /// delivered SIGTERM/SIGINT into an operator drain and fires the
    /// time-based rejuvenation trigger even when no jobs are arriving.
    fn start_monitor(&self) {
        if self
            .inner
            .monitor_started
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("nvp-serve-monitor".to_owned())
            .spawn(move || {
                while !inner.stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                    if signal::drain_requested() {
                        begin_drain(&inner, DrainKind::Terminate, "signal");
                    } else {
                        maybe_rejuvenate(&inner);
                    }
                }
            });
        if spawned.is_err() {
            // Degraded but serviceable: job-count triggers still fire from
            // job completions; only signals and after_secs go unnoticed.
            sink::server("monitor", "cannot spawn monitor thread");
        }
    }
}

/// Why a drain was started; decides what happens when it completes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DrainKind {
    /// Renew the engine (swap in-process or exit `75`, per the policy).
    Rejuvenate,
    /// Stop the daemon cleanly (exit `0`).
    Terminate,
}

/// The current aging signals, sampled for the rejuvenation policy, the
/// `/v1/debug/aging` endpoint, and every flight-dump header.
fn aging_snapshot(inner: &Arc<ServerInner>) -> AgingSnapshot {
    let cycle_secs = inner
        .cycle_started
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .elapsed()
        .as_secs();
    AgingSnapshot {
        jobs_this_cycle: inner
            .jobs_finished
            .load(Ordering::SeqCst)
            .saturating_sub(inner.cycle_jobs_base.load(Ordering::SeqCst)),
        cycle_secs,
        cache_entries: inner.engine().cache_len(),
        panic_streak: inner.panic_streak.load(Ordering::SeqCst),
    }
}

/// Samples the aging signals and starts a rejuvenation drain if the
/// policy says so. Called after every job completion and by the monitor.
fn maybe_rejuvenate(inner: &Arc<ServerInner>) {
    let policy = &inner.config.rejuvenation;
    if !policy.is_enabled() || inner.draining() {
        return;
    }
    let snapshot = aging_snapshot(inner);
    if let Some(reason) = policy.tripped(&snapshot) {
        begin_drain(inner, DrainKind::Rejuvenate, reason);
    }
}

/// The [`DumpContext`] for a dump taken right now: trigger, serving state,
/// and the aging snapshot, so each dump file is a self-contained
/// postmortem.
fn dump_context(inner: &Arc<ServerInner>, trigger: &str, detail: &str) -> DumpContext {
    let aging = aging_snapshot(inner);
    DumpContext {
        trigger: trigger.to_owned(),
        detail: detail.to_owned(),
        state: if inner.draining() {
            "draining".to_owned()
        } else {
            "serving".to_owned()
        },
        aging: vec![
            ("jobs_this_cycle", aging.jobs_this_cycle),
            ("cycle_secs", aging.cycle_secs),
            ("cache_entries", aging.cache_entries as u64),
            ("panic_streak", u64::from(aging.panic_streak)),
            ("uptime_secs", inner.started.elapsed().as_secs()),
            ("rejuvenations", inner.rejuvenations.get()),
        ],
    }
}

/// Write a flight-recorder dump to `flight_dir`, if one is configured.
/// Failures are logged, never fatal — the black box must not take the
/// plane down.
fn flight_dump(inner: &Arc<ServerInner>, trigger: &str, detail: &str) {
    let Some(dir) = &inner.config.flight_dir else {
        return;
    };
    let context = dump_context(inner, trigger, detail);
    let seq = inner.flight_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let path = dir.join(format!("flight-{seq:04}-{trigger}.jsonl"));
    let result = std::fs::create_dir_all(dir).and_then(|()| {
        let mut file = io::BufWriter::new(std::fs::File::create(&path)?);
        recorder::write_dump(&inner.flight, &context, &mut file)?;
        file.flush()
    });
    match result {
        Ok(()) => sink::server(
            "flight",
            &format!("{trigger} dump written to {}", path.display()),
        ),
        Err(e) => sink::server("flight", &format!("cannot write {}: {e}", path.display())),
    }
}

/// Enters the drain state machine (at most one drain at a time):
///
/// 1. stop admitting jobs (`503` + jittered `Retry-After`, `/healthz`
///    reports `"draining"`);
/// 2. wait for in-flight jobs under the drain deadline; past it, cancel
///    them through the engine-wide budget flag (they land as typed
///    failures) and keep waiting up to a 2x hard stop;
/// 3. fsync the store — the memento the next engine warms up from;
/// 4. resolve: swap a fresh engine in-process and resume serving, or set
///    the stop flag (exit-mode rejuvenation and operator drains).
fn begin_drain(inner: &Arc<ServerInner>, kind: DrainKind, reason: &'static str) {
    if inner
        .drain_active
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return;
    }
    inner.state.store(STATE_DRAINING, Ordering::SeqCst);
    sink::server("drain", &format!("draining ({reason})"));
    // The black box snapshot of what the daemon was doing when the drain
    // started — covers operator drains, tripped triggers, and SIGTERM.
    flight_dump(inner, "drain", reason);
    let worker = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name("nvp-serve-drain".to_owned())
        .spawn(move || drain_and_resolve(&worker, kind));
    if let Err(e) = spawned {
        // No drain thread means no graceful path; fall back to a hard
        // stop rather than serving 503s forever.
        sink::server("drain", &format!("cannot spawn drain thread: {e}"));
        inner.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(inner.local_addr);
    }
}

/// The drain worker body; see [`begin_drain`] for the state machine.
fn drain_and_resolve(inner: &Arc<ServerInner>, kind: DrainKind) {
    let engine = inner.engine();
    let deadline = inner.config.rejuvenation.drain_deadline;
    let started = Instant::now();
    let mut cancelled = false;
    loop {
        let counts = inner.jobs.counts();
        if counts.queued + counts.running == 0 {
            break;
        }
        let elapsed = started.elapsed();
        if elapsed >= deadline && !cancelled {
            // Overdue: reclaim the workers through the same cooperative
            // flag the watchdog uses; the jobs finish as typed failures.
            sink::server("drain", "deadline passed; cancelling in-flight jobs");
            engine.cancel_inflight();
            cancelled = true;
        }
        if elapsed >= deadline * 2 + Duration::from_secs(1) {
            // A solve stuck where no budget check runs cannot be reclaimed
            // cooperatively; give up waiting rather than hang the drain.
            sink::server("drain", "hard stop: jobs still running past 2x deadline");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if let Some(store) = engine.store() {
        // Belt-and-braces: records are already written atomically; this
        // pins down the directory metadata before a restart.
        if let Err(e) = store.sync() {
            sink::server("drain", &format!("store sync failed: {e}"));
        }
    }
    match (kind, inner.config.rejuvenation.mode) {
        (DrainKind::Terminate, _) => {
            inner.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(inner.local_addr);
        }
        (DrainKind::Rejuvenate, RejuvenateMode::Exit) => {
            inner.rejuvenations.inc();
            flight_dump(inner, "rejuvenate", "exit");
            inner.exit_rejuvenate.store(true, Ordering::SeqCst);
            inner.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(inner.local_addr);
        }
        (DrainKind::Rejuvenate, RejuvenateMode::Swap) => {
            let factory = inner
                .factory
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            match factory {
                Some(build) => {
                    // The replacement is fully built (and warm-capable via
                    // the store) before it becomes visible to requests.
                    let fresh = Arc::new(build());
                    *inner
                        .engine
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = fresh;
                }
                None => {
                    // In-place renewal: drop aged cache state and re-arm
                    // the cancellation flag we may just have set.
                    engine.clear();
                    engine.reset_cancellation();
                }
            }
            inner.rejuvenations.inc();
            // Dumped before the cycle counters reset, so the postmortem
            // shows the aging that justified the swap.
            flight_dump(inner, "rejuvenate", "swap");
            *inner
                .cycle_started
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Instant::now();
            inner
                .cycle_jobs_base
                .store(inner.jobs_finished.load(Ordering::SeqCst), Ordering::SeqCst);
            inner.panic_streak.store(0, Ordering::SeqCst);
            inner.state.store(STATE_SERVING, Ordering::SeqCst);
            inner.drain_active.store(false, Ordering::SeqCst);
            sink::server("drain", "rejuvenated: fresh engine serving");
        }
    }
}

fn release_connection(inner: &ServerInner) {
    let active = inner.active.fetch_sub(1, Ordering::SeqCst) - 1;
    inner.metrics.active_connections.set(active as u64);
}

/// The connection reader: enforces a total per-request deadline on top of
/// the socket's per-read timeout. The deadline arms when the first byte of
/// a request arrives (keep-alive idle time between requests does not
/// count) and is cleared by [`DeadlineReader::finish_request`]; while
/// armed, each socket wait is capped at the time still remaining, so a
/// request that trickles in byte by byte errors out at the deadline
/// instead of holding its connection slot indefinitely.
struct DeadlineReader {
    reader: BufReader<TcpStream>,
    read_timeout: Duration,
    request_timeout: Duration,
    deadline: Option<Instant>,
}

impl DeadlineReader {
    fn new(stream: TcpStream, config: &ServeConfig) -> DeadlineReader {
        DeadlineReader {
            reader: BufReader::new(stream),
            read_timeout: config.read_timeout,
            request_timeout: config.request_timeout,
            deadline: None,
        }
    }

    /// Disarm after a request is fully read and restore the idle timeout.
    fn finish_request(&mut self) {
        self.deadline = None;
        let _ = self
            .reader
            .get_ref()
            .set_read_timeout(Some(self.read_timeout));
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for DeadlineReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        match self.deadline {
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request deadline exceeded",
                    ));
                }
                let _ = self
                    .reader
                    .get_ref()
                    .set_read_timeout(Some(remaining.min(self.read_timeout)));
            }
            None => {
                // Idle: wait under the per-read timeout, then arm the
                // request clock the moment data shows up.
                if !self.reader.fill_buf()?.is_empty() {
                    self.deadline = Some(Instant::now() + self.request_timeout);
                }
            }
        }
        self.reader.fill_buf()
    }

    fn consume(&mut self, n: usize) {
        self.reader.consume(n);
    }
}

/// Keep-alive loop over one accepted connection.
fn serve_connection(inner: &Arc<ServerInner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = DeadlineReader::new(read_half, &inner.config);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, inner.config.max_body_bytes) {
            Ok(None) => return,
            Ok(Some(request)) => {
                reader.finish_request();
                let request_id = format!(
                    "req-{}",
                    inner.next_request.fetch_add(1, Ordering::Relaxed) + 1
                );
                inner.metrics.requests.inc();
                let endpoint = endpoint_index(&request.path);
                let started = Instant::now();
                // The request's span carries the `[req-N]` id; its handle
                // crosses into the job thread so every engine span a
                // submission causes is attributable to this request.
                let mut span = trace::span("http.request");
                if !span.is_inert() {
                    span.record("request_id", request_id.clone());
                    span.record("method", request.method.clone());
                    span.record("path", request.path.clone());
                    span.record("endpoint", ENDPOINTS[endpoint]);
                }
                let link = span.handle();
                // The connection supervisor: one panicking handler costs
                // this request, never the daemon.
                let response = catch_unwind(AssertUnwindSafe(|| {
                    dispatch(inner, &request_id, &request, link)
                }))
                .unwrap_or_else(|payload| {
                    inner.metrics.panics.inc();
                    let message = panic_message(payload);
                    sink::server(&request_id, &format!("handler panicked: {message}"));
                    Response::json(500, api::error_body("internal error: handler panicked"))
                });
                span.record("status", u64::from(response.status));
                drop(span);
                let elapsed = started.elapsed();
                inner.metrics.observe(endpoint, response.status, elapsed);
                if response.status == 429 {
                    inner.metrics.rejected.inc();
                } else if (400..500).contains(&response.status) {
                    inner.metrics.bad_requests.inc();
                }
                access_log(inner, &request_id, &request, &response, endpoint, elapsed);
                let close = request.close;
                if http::write_response(&mut writer, &response, close).is_err() || close {
                    return;
                }
            }
            Err(error) => {
                // Protocol-level failures still get an answer (the client
                // is waiting); transport failures just end the connection.
                let response = match error {
                    RequestError::Malformed(message) => {
                        Some(Response::json(400, api::error_body(&message)))
                    }
                    RequestError::LengthRequired => Some(Response::json(
                        411,
                        api::error_body("content-length is required"),
                    )),
                    RequestError::BodyTooLarge { declared, limit } => Some(Response::json(
                        413,
                        api::error_body(&format!(
                            "request body of {declared} bytes exceeds the {limit}-byte limit"
                        )),
                    )),
                    RequestError::HeadTooLarge => Some(Response::json(
                        431,
                        api::error_body("request head exceeds the size limit"),
                    )),
                    RequestError::Io(_) => None,
                };
                if let Some(response) = response {
                    inner.metrics.requests.inc();
                    inner.metrics.bad_requests.inc();
                    // No parsed path to attribute this to: it lands in the
                    // `other` endpoint bucket with zero measured latency.
                    inner.metrics.requests_by[7][status_class_index(response.status)].inc();
                    let _ = http::write_response(&mut writer, &response, true);
                }
                return;
            }
        }
    }
}

/// One line per served request through the shared stderr sink: structured
/// JSON when configured (machine-greppable access log), the established
/// human-readable line otherwise.
fn access_log(
    inner: &Arc<ServerInner>,
    request_id: &str,
    request: &Request,
    response: &Response,
    endpoint: usize,
    elapsed: Duration,
) {
    if inner.config.access_log {
        let line = Json::Obj(vec![
            ("req".to_owned(), Json::Str(request_id.to_owned())),
            ("method".to_owned(), Json::Str(request.method.clone())),
            ("path".to_owned(), Json::Str(request.path.clone())),
            (
                "endpoint".to_owned(),
                Json::Str(ENDPOINTS[endpoint].to_owned()),
            ),
            ("status".to_owned(), Json::Num(f64::from(response.status))),
            (
                "nanos".to_owned(),
                Json::Num(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX) as f64),
            ),
            (
                "body_bytes".to_owned(),
                Json::Num(request.body.len() as f64),
            ),
        ]);
        sink::server(request_id, &line.emit());
    } else {
        sink::server(
            request_id,
            &format!(
                "{} {} -> {} ({:?})",
                request.method, request.path, response.status, elapsed
            ),
        );
    }
}

fn dispatch(
    inner: &Arc<ServerInner>,
    request_id: &str,
    request: &Request,
    link: Option<SpanHandle>,
) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => healthz(inner),
        ("GET", "/metrics") => {
            // Engine series (reset by an engine swap) followed by the
            // server's own (HTTP + rejuvenation counters, which survive
            // swaps). Names never collide, so the concatenation is a
            // valid exposition.
            let mut text = inner.engine().metrics().render_prometheus();
            text.push_str(&inner.registry.render_prometheus());
            Response::text(200, text)
        }
        ("POST", "/v1/analyze") => submit(inner, request_id, request, JobKind::Analyze, link),
        ("POST", "/v1/sweep") => submit(inner, request_id, request, JobKind::Sweep, link),
        ("GET", "/v1/debug/recorder") => debug_recorder(inner),
        ("GET", "/v1/debug/aging") => debug_aging(inner),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                if method != "GET" {
                    return method_not_allowed();
                }
                return job_endpoint(inner, rest, request.query.as_deref());
            }
            if matches!(
                path,
                "/healthz"
                    | "/metrics"
                    | "/v1/analyze"
                    | "/v1/sweep"
                    | "/v1/debug/recorder"
                    | "/v1/debug/aging"
            ) {
                return method_not_allowed();
            }
            Response::json(404, api::error_body(&format!("no route for {path}")))
        }
    }
}

/// `GET /v1/debug/recorder`: the live flight ring as a JSONL dump (the
/// same bytes a trigger would write to `--flight-dir`), read-only.
fn debug_recorder(inner: &Arc<ServerInner>) -> Response {
    let context = dump_context(inner, "inspect", "debug endpoint");
    Response::text(200, recorder::dump_to_string(&inner.flight, &context))
}

/// `GET /v1/debug/aging`: the aging signals the rejuvenation policy
/// judges, plus recorder health — the numbers an operator wants *before*
/// a trigger trips.
fn debug_aging(inner: &Arc<ServerInner>) -> Response {
    let aging = aging_snapshot(inner);
    let policy = &inner.config.rejuvenation;
    let body = Json::Obj(vec![
        (
            "state".to_owned(),
            Json::Str(if inner.draining() {
                "draining".to_owned()
            } else {
                "serving".to_owned()
            }),
        ),
        (
            "aging".to_owned(),
            Json::Obj(vec![
                (
                    "jobs_this_cycle".to_owned(),
                    Json::Num(aging.jobs_this_cycle as f64),
                ),
                ("cycle_secs".to_owned(), Json::Num(aging.cycle_secs as f64)),
                (
                    "cache_entries".to_owned(),
                    Json::Num(aging.cache_entries as f64),
                ),
                (
                    "panic_streak".to_owned(),
                    Json::Num(f64::from(aging.panic_streak)),
                ),
            ]),
        ),
        (
            "policy".to_owned(),
            Json::Obj(vec![
                ("enabled".to_owned(), Json::Bool(policy.is_enabled())),
                (
                    "would_trip".to_owned(),
                    match policy.tripped(&aging) {
                        Some(reason) => Json::Str(reason.to_owned()),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        (
            "recorder".to_owned(),
            Json::Obj(vec![
                (
                    "capacity".to_owned(),
                    Json::Num(inner.flight.capacity() as f64),
                ),
                ("pushed".to_owned(), Json::Num(inner.flight.pushed() as f64)),
                (
                    "dropped".to_owned(),
                    Json::Num(inner.flight.dropped() as f64),
                ),
            ]),
        ),
        (
            "rejuvenations".to_owned(),
            Json::Num(inner.rejuvenations.get() as f64),
        ),
    ]);
    Response::json(200, body.emit())
}

fn method_not_allowed() -> Response {
    Response::json(405, api::error_body("method not allowed"))
}

/// `POST /v1/analyze` / `POST /v1/sweep`: parse (hardened), admit
/// (pool-permit gate), register, and hand off to a worker thread. The
/// `202` goes out as soon as the job exists; clients poll the job URL.
fn submit(
    inner: &Arc<ServerInner>,
    request_id: &str,
    request: &Request,
    kind: JobKind,
    link: Option<SpanHandle>,
) -> Response {
    if inner.draining() {
        return Response::json(
            503,
            api::error_body("draining for rejuvenation; retry after the indicated delay"),
        )
        .with_retry_after(retry_jitter(request_id));
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::json(400, api::error_body("request body is not valid UTF-8"));
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::json(400, api::error_body(&format!("invalid JSON: {e}")));
        }
    };
    let (spec, total_points) = match kind {
        JobKind::Analyze => match api::parse_analyze(&doc) {
            Ok(spec) => (JobSpec::Analyze(spec), 1),
            Err(message) => return Response::json(400, api::error_body(&message)),
        },
        JobKind::Sweep => match api::parse_sweep(&doc) {
            Ok(spec) => {
                let steps = spec.steps;
                (JobSpec::Sweep(spec), steps)
            }
            Err(message) => return Response::json(400, api::error_body(&message)),
        },
    };
    // Admission control: a job needs at least one pool permit for its
    // lifetime. `try_acquire` never blocks; zero grants means the pool is
    // starved and the honest answer is "try again later", not a queue that
    // grows without bound.
    let permits = WorkerPool::global().try_acquire(1);
    if permits.count() == 0 {
        return Response::json(
            429,
            api::error_body("worker pool exhausted; retry after the indicated delay"),
        )
        .with_retry_after(retry_jitter(request_id));
    }
    let id = inner.jobs.create(kind, total_points);
    inner.metrics.jobs_submitted.inc();
    let job_inner = Arc::clone(inner);
    let spawned = std::thread::Builder::new()
        .name(format!("nvp-serve-job-{id}"))
        .spawn(move || run_job(&job_inner, id, &spec, permits, link));
    match spawned {
        Ok(_) => Response::json(202, api::job_accepted(id).emit()),
        Err(e) => {
            inner.metrics.jobs_failed.inc();
            inner.jobs.fail(id, format!("cannot spawn job thread: {e}"));
            sink::server(request_id, &format!("job-{id} spawn failed: {e}"));
            Response::json(503, api::error_body("cannot spawn job thread"))
                .with_retry_after(retry_jitter(request_id))
        }
    }
}

/// Deterministic per-request `Retry-After` jitter in `1..=3` seconds,
/// seeded from the request id (FNV-1a; no `rand` dependency). A fixed
/// constant would march every client refused during a drain back in
/// lockstep; distinct request ids de-synchronize them, and determinism
/// keeps refusal behavior reproducible in tests.
fn retry_jitter(seed: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in seed.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    1 + hash % 3
}

/// Job worker body. Holds its admission permit for the duration; panics
/// fail the job, never the daemon.
///
/// The `job.run` span carries the causing request's span id in its `link`
/// field (cross-thread causality, not containment: the HTTP request span
/// closed when the `202` went out). It is closed *before* any panic dump
/// so the dump always contains the span that names the triggering job.
fn run_job(
    inner: &Arc<ServerInner>,
    id: JobId,
    spec: &JobSpec,
    permits: Permits<'static>,
    link: Option<SpanHandle>,
) {
    let mut span = trace::span_linked("job.run", link);
    if !span.is_inert() {
        span.record("job", id);
    }
    inner.jobs.mark_running(id);
    let outcome = catch_unwind(AssertUnwindSafe(|| execute_job(inner, id, spec)));
    drop(permits);
    let verdict = match &outcome {
        Ok(Ok(_)) => "done",
        Ok(Err(_)) => "failed",
        Err(_) => "panicked",
    };
    if !span.is_inert() {
        span.record("outcome", verdict);
    }
    drop(span);
    match outcome {
        Ok(Ok(result)) => {
            inner.jobs.finish(id, result);
            inner.metrics.jobs_completed.inc();
            inner.panic_streak.store(0, Ordering::SeqCst);
        }
        Ok(Err(error)) => {
            inner.metrics.jobs_failed.inc();
            sink::server(&format!("job-{id}"), &format!("failed: {error}"));
            inner.jobs.fail(id, error.to_string());
            inner.panic_streak.store(0, Ordering::SeqCst);
        }
        Err(payload) => {
            inner.metrics.panics.inc();
            inner.metrics.jobs_failed.inc();
            let message = panic_message(payload);
            sink::server(&format!("job-{id}"), &format!("worker panicked: {message}"));
            inner.jobs.fail(id, format!("worker panicked: {message}"));
            inner.panic_streak.fetch_add(1, Ordering::SeqCst);
            // Black-box moment: the ring now holds the request span, this
            // job's span, and whatever engine spans unwound — write them out.
            flight_dump(inner, "panic", &format!("job-{id}: {message}"));
        }
    }
    inner.jobs_finished.fetch_add(1, Ordering::SeqCst);
    // Job-count, cache-pressure and panic-streak triggers fire here, at
    // the moment the aging signal actually changed.
    maybe_rejuvenate(inner);
}

fn execute_job(
    inner: &Arc<ServerInner>,
    id: JobId,
    spec: &JobSpec,
) -> Result<JobOutcome, nvp_core::CoreError> {
    // Chaos hook for the flight-recorder drill: unlike the engine-level
    // sites (whose panics the supervisor absorbs into degraded points),
    // a panic here unwinds the whole worker — the path the recorder's
    // "panic" trigger exists for.
    #[cfg(feature = "fault-inject")]
    if let Some(mode) = nvp_numerics::fault::check(nvp_numerics::fault::Site::ServeJob) {
        return Err(nvp_core::CoreError::WorkerPanicked {
            site: "serve-job (fault-inject)",
            payload: format!("injected {mode:?}"),
        });
    }
    // One engine for the whole job: a rejuvenation swap mid-job must not
    // split a sweep across two engines.
    let engine = inner.engine();
    match spec {
        JobSpec::Analyze(spec) => {
            // The job-level watchdog: a job without its own budget gets
            // the server's default deadline (when configured), so it can
            // never pin a pool permit forever — it lands as a typed,
            // terminal failure instead.
            let report = engine.analyze_budgeted(
                &spec.params,
                spec.policy,
                ReliabilitySource::Auto,
                spec.backend,
                spec.budget_ms.or(inner.config.job_deadline_ms),
            )?;
            inner.jobs.record_point(
                id,
                SweepPointRecord {
                    index: 0,
                    x: 0.0,
                    value: report.expected_reliability,
                    degraded: report.degraded.is_some(),
                },
            );
            Ok(JobOutcome::Analyze(report))
        }
        JobSpec::Sweep(spec) => {
            let grid = linspace(spec.from, spec.to, spec.steps);
            // Per-point completions stream straight into the job's
            // progress journal, from whichever engine worker finished
            // them — the service analog of the CLI's resume journal.
            let observer = |record: SweepPointRecord| inner.jobs.record_point(id, record);
            let points = engine.sweep_supervised_budgeted(
                &spec.base.params,
                spec.axis,
                &grid,
                spec.base.policy,
                spec.base.backend,
                spec.base.budget_ms.or(inner.config.job_deadline_ms),
                &observer,
            )?;
            let degraded_points = inner
                .jobs
                .progress_since(id, 0)
                .map_or(0, |(_, _, records)| {
                    records.iter().filter(|r| r.degraded).count()
                });
            let csv = api::sweep_csv(spec.axis, &points);
            Ok(JobOutcome::Sweep {
                points,
                csv,
                degraded_points,
            })
        }
    }
}

/// `GET /v1/jobs/{id}` and `GET /v1/jobs/{id}/progress`.
fn job_endpoint(inner: &Arc<ServerInner>, rest: &str, query: Option<&str>) -> Response {
    let (id_text, progress) = match rest.split_once('/') {
        None => (rest, false),
        Some((id_text, "progress")) => (id_text, true),
        Some(_) => {
            return Response::json(404, api::error_body("no such job endpoint"));
        }
    };
    let Ok(id) = id_text.parse::<JobId>() else {
        return Response::json(400, api::error_body("job id must be a decimal integer"));
    };
    if progress {
        let since = match query_from(query) {
            Ok(since) => since,
            Err(message) => return Response::json(400, api::error_body(&message)),
        };
        match inner.jobs.progress_since(id, since) {
            Some((status, total, records)) => Response::json(
                200,
                api::job_progress(id, status, total, since, &records).emit(),
            ),
            None => Response::json(404, api::error_body(&format!("no job {id}"))),
        }
    } else {
        match inner.jobs.snapshot(id) {
            Some(snapshot) => Response::json(200, api::job_status(&snapshot).emit()),
            None => Response::json(404, api::error_body(&format!("no job {id}"))),
        }
    }
}

/// Parse the `from=N` cursor of a progress poll.
fn query_from(query: Option<&str>) -> Result<usize, String> {
    let Some(query) = query else { return Ok(0) };
    let mut from = 0;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "from" {
            from = value
                .parse::<usize>()
                .map_err(|_| format!("bad `from` value {value:?}"))?;
        } else {
            return Err(format!("unknown query parameter `{key}`"));
        }
    }
    Ok(from)
}

/// `GET /healthz`: daemon state, engine, store, pool, and job-table
/// health in one body — enough for operators (and the chaos drills) to
/// observe aging and drain without scraping `/metrics`.
fn healthz(inner: &Arc<ServerInner>) -> Response {
    let engine = inner.engine();
    let stats = engine.stats();
    let counts = inner.jobs.counts();
    let pool = WorkerPool::global();
    let store = match engine.store() {
        None => Json::Null,
        Some(store) => match store.stats() {
            Ok(s) => Json::Obj(vec![
                ("entries".to_owned(), Json::Num(s.entries as f64)),
                ("bytes".to_owned(), Json::Num(s.bytes as f64)),
                ("quarantined".to_owned(), Json::Num(s.quarantined as f64)),
            ]),
            Err(e) => Json::Obj(vec![("error".to_owned(), Json::Str(e.to_string()))]),
        },
    };
    let state = if inner.draining() {
        "draining"
    } else {
        "serving"
    };
    let body = Json::Obj(vec![
        ("status".to_owned(), Json::Str("ok".to_owned())),
        ("state".to_owned(), Json::Str(state.to_owned())),
        (
            "uptime_secs".to_owned(),
            Json::Num(inner.started.elapsed().as_secs() as f64),
        ),
        (
            "jobs_served_total".to_owned(),
            Json::Num(inner.jobs_finished.load(Ordering::SeqCst) as f64),
        ),
        (
            "rejuvenations".to_owned(),
            Json::Num(inner.rejuvenations.get() as f64),
        ),
        (
            "jobs".to_owned(),
            Json::Obj(vec![
                ("queued".to_owned(), Json::Num(counts.queued as f64)),
                ("running".to_owned(), Json::Num(counts.running as f64)),
                ("done".to_owned(), Json::Num(counts.done as f64)),
                ("failed".to_owned(), Json::Num(counts.failed as f64)),
            ]),
        ),
        (
            "engine".to_owned(),
            Json::Obj(vec![
                ("cache_hits".to_owned(), Json::Num(stats.cache_hits as f64)),
                (
                    "cache_misses".to_owned(),
                    Json::Num(stats.cache_misses as f64),
                ),
                (
                    "cache_entries".to_owned(),
                    Json::Num(stats.chain_solutions as f64),
                ),
                (
                    "cache_bytes_approx".to_owned(),
                    Json::Num(engine.cache_bytes_approx() as f64),
                ),
                (
                    "cache_evictions".to_owned(),
                    Json::Num(stats.cache_evictions as f64),
                ),
                (
                    "chain_solutions".to_owned(),
                    Json::Num(stats.chain_solutions as f64),
                ),
                (
                    "degraded_solutions".to_owned(),
                    Json::Num(stats.degraded_solutions as f64),
                ),
                (
                    "worker_panics".to_owned(),
                    Json::Num(stats.worker_panics as f64),
                ),
                ("store_hits".to_owned(), Json::Num(stats.store_hits as f64)),
            ]),
        ),
        (
            "pool".to_owned(),
            Json::Obj(vec![
                ("capacity".to_owned(), Json::Num(pool.capacity() as f64)),
                ("available".to_owned(), Json::Num(pool.available() as f64)),
                ("in_use".to_owned(), Json::Num(pool.in_use() as f64)),
            ]),
        ),
        ("store".to_owned(), store),
    ]);
    Response::json(200, body.emit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_from_parses_and_rejects() {
        assert_eq!(query_from(None).unwrap(), 0);
        assert_eq!(query_from(Some("from=5")).unwrap(), 5);
        assert!(query_from(Some("from=x")).is_err());
        assert!(query_from(Some("limit=2")).is_err());
    }

    #[test]
    fn retry_jitter_is_deterministic_and_in_range() {
        for seed in ["req-1", "req-2", "req-3", "conn-64", ""] {
            let first = retry_jitter(seed);
            assert_eq!(first, retry_jitter(seed), "deterministic per seed");
            assert!((1..=3).contains(&first), "{seed}: {first}");
        }
        // Distinct ids actually spread out (the whole point of jitter):
        // across a modest id range all three values occur.
        let values: std::collections::BTreeSet<u64> =
            (0..32).map(|i| retry_jitter(&format!("req-{i}"))).collect();
        assert_eq!(values.len(), 3, "{values:?}");
    }

    #[test]
    fn panic_messages_extract_both_payload_shapes() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new("boom".to_owned())), "boom");
        assert_eq!(panic_message(Box::new(42u8)), "panic of unknown type");
    }
}
