//! In-process end-to-end tests: a real daemon on an ephemeral port, driven
//! by raw `TcpStream` clients.
//!
//! Every test binds its own [`Server`] around its own engine, so tests are
//! independent except for the process-wide worker pool — submissions are
//! serialized behind [`submit_lock`] so the admission-control test can
//! starve the pool deterministically without 429-ing its neighbours.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use nvp_core::analysis::{ParamAxis, SolverBackend};
use nvp_core::engine::AnalysisEngine;
use nvp_core::params::SystemParams;
use nvp_core::reliability::ReliabilitySource;
use nvp_core::reward::RewardPolicy;
use nvp_numerics::pool::WorkerPool;
use nvp_obs::json::Json;
use nvp_serve::{RejuvenationPolicy, ServeConfig, Server};
use nvp_store::SolveStore;

/// Global submission lock: tests that POST jobs (and the test that starves
/// the pool) hold this so admission behavior stays deterministic.
fn submit_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct TestServer {
    server: Server,
    addr: SocketAddr,
}

impl TestServer {
    fn start(engine: AnalysisEngine, config: ServeConfig) -> TestServer {
        let server = Server::bind(Arc::new(engine), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        let runner = server.clone();
        std::thread::spawn(move || runner.run().unwrap());
        TestServer { server, addr }
    }

    fn default_start() -> TestServer {
        Self::start(AnalysisEngine::new(), ServeConfig::default())
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.server.shutdown();
    }
}

struct Reply {
    status: u16,
    head: String,
    body: String,
}

impl Reply {
    fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("unparseable body ({e}): {}", self.body))
    }
}

/// One request on its own connection (`Connection: close`), read to EOF.
///
/// Writes and reads are failure-tolerant up to a point: a server that
/// rejects an oversized body closes the connection before the client has
/// finished writing it, which surfaces here as `EPIPE` on write and
/// possibly `ECONNRESET` after the response bytes have arrived.
fn roundtrip(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut raw = format!("{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    if let Some(body) = body {
        raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    } else {
        raw.push_str("\r\n");
    }
    let _ = stream.write_all(raw.as_bytes());
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) if !bytes.is_empty() => break,
            Err(e) => panic!("read failed with no response bytes: {e}"),
        }
    }
    parse_reply(&String::from_utf8(bytes).unwrap())
}

fn parse_reply(text: &str) -> Reply {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {text:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    Reply {
        status,
        head: head.to_owned(),
        body: body.to_owned(),
    }
}

/// Submit a job, honoring the admission-control contract: a `429` means
/// "retry after the indicated delay", which on a single-permit host is the
/// normal answer while another job holds the pool, and a `503` means the
/// daemon is draining for rejuvenation and will admit again shortly.
fn submit(addr: SocketAddr, endpoint: &str, body: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = roundtrip(addr, "POST", endpoint, Some(body));
        if (reply.status == 429 || reply.status == 503) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        assert_eq!(reply.status, 202, "submit failed: {}", reply.body);
        return reply.json().get("job").unwrap().as_u64().unwrap();
    }
}

/// Poll a job until it reaches a terminal state.
fn await_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = roundtrip(addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = reply.json();
        let status = doc.get("status").unwrap().as_str().unwrap().to_owned();
        if status == "done" || status == "failed" {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {status}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

const SWEEP_BODY: &str = r#"{"axis":"alpha","from":0.1,"to":0.9,"steps":4}"#;

#[test]
fn analyze_job_matches_direct_engine_result() {
    let ts = TestServer::default_start();
    let id = {
        let _guard = submit_lock();
        submit(ts.addr, "/v1/analyze", "{}")
    };
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("analyze"));
    let got = doc
        .get("result")
        .unwrap()
        .get("expected_reliability")
        .unwrap()
        .as_f64()
        .unwrap();
    let reference = AnalysisEngine::new()
        .analyze(
            &SystemParams::paper_six_version(),
            RewardPolicy::FailedOnly,
            ReliabilitySource::Auto,
            SolverBackend::Auto,
        )
        .unwrap()
        .expected_reliability;
    // f64 Display round-trips exactly, so the service answer is the CLI
    // answer to the last bit.
    assert_eq!(got, reference);
}

#[test]
fn concurrent_sweep_clients_get_byte_identical_csv() {
    let ts = TestServer::default_start();
    let ids: Vec<u64> = {
        let _guard = submit_lock();
        (0..3)
            .map(|_| submit(ts.addr, "/v1/sweep", SWEEP_BODY))
            .collect()
    };
    let csvs: Vec<String> = ids
        .iter()
        .map(|&id| {
            let doc = await_job(ts.addr, id);
            assert_eq!(
                doc.get("status").unwrap().as_str(),
                Some("done"),
                "job {id}"
            );
            doc.get("result")
                .unwrap()
                .get("csv")
                .unwrap()
                .as_str()
                .unwrap()
                .to_owned()
        })
        .collect();
    assert_eq!(csvs[0], csvs[1]);
    assert_eq!(csvs[1], csvs[2]);
    // Byte-identical to the CLI path: same grid, same engine API, same
    // formatting.
    let reference_points = AnalysisEngine::new()
        .sweep_with(
            &SystemParams::paper_six_version(),
            ParamAxis::Alpha,
            &nvp_core::analysis::linspace(0.1, 0.9, 4),
            RewardPolicy::FailedOnly,
            SolverBackend::Auto,
        )
        .unwrap();
    let mut reference = format!("{},expected_reliability\n", ParamAxis::Alpha.label());
    for (x, r) in &reference_points {
        reference.push_str(&format!("{x},{r}\n"));
    }
    assert_eq!(csvs[0], reference);
    // The shared engine answered at least the repeat jobs from cache.
    let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
    let hits = health
        .get("engine")
        .unwrap()
        .get("cache_hits")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(hits >= 1, "expected warm-cache hits, got {hits}");
}

#[test]
fn progress_endpoint_streams_the_point_journal() {
    let ts = TestServer::default_start();
    let id = {
        let _guard = submit_lock();
        submit(ts.addr, "/v1/sweep", SWEEP_BODY)
    };
    await_job(ts.addr, id);
    let doc = roundtrip(ts.addr, "GET", &format!("/v1/jobs/{id}/progress"), None).json();
    let Json::Arr(points) = doc.get("points").unwrap() else {
        panic!("points is not an array");
    };
    assert_eq!(points.len(), 4);
    for point in points {
        assert!(point.get("value").unwrap().as_f64().unwrap().is_finite());
    }
    // Cursor-based incremental poll: skip what we have seen.
    let tail = roundtrip(
        ts.addr,
        "GET",
        &format!("/v1/jobs/{id}/progress?from=3"),
        None,
    )
    .json();
    let Json::Arr(rest) = tail.get("points").unwrap() else {
        panic!("points is not an array");
    };
    assert_eq!(rest.len(), 1);
    assert!(
        roundtrip(
            ts.addr,
            "GET",
            &format!("/v1/jobs/{id}/progress?from=xyz"),
            None
        )
        .status
            == 400
    );
}

#[test]
fn starved_pool_answers_429_with_retry_after() {
    let ts = TestServer::default_start();
    let _guard = submit_lock();
    // Wait for any stragglers from other tests to release their permits,
    // then take everything: no running jobs + all permits held + the
    // submit lock means nothing can free a permit under us.
    let pool = WorkerPool::global();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut held = Vec::new();
    loop {
        while pool.available() > 0 {
            let permits = pool.try_acquire(pool.available());
            if permits.count() > 0 {
                held.push(permits);
            }
        }
        let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
        let running = health
            .get("jobs")
            .unwrap()
            .get("running")
            .unwrap()
            .as_u64()
            .unwrap();
        if running == 0 && pool.available() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "pool never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    let reply = roundtrip(ts.addr, "POST", "/v1/sweep", Some(SWEEP_BODY));
    assert_eq!(reply.status, 429, "{}", reply.body);
    assert!(
        reply.head.to_ascii_lowercase().contains("retry-after:"),
        "missing retry-after in {}",
        reply.head
    );
    drop(held);
    // With permits back, the same request is admitted.
    let id = submit(ts.addr, "/v1/sweep", SWEEP_BODY);
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
}

#[test]
fn ingress_bombs_get_400_and_the_daemon_keeps_serving() {
    let ts = TestServer::start(
        AnalysisEngine::new(),
        ServeConfig {
            max_body_bytes: 64 * 1024,
            ..ServeConfig::default()
        },
    );
    // Depth bomb: would have been a stack-overflow process kill before the
    // parser's depth cap.
    let depth_bomb = "[".repeat(50_000);
    let reply = roundtrip(ts.addr, "POST", "/v1/analyze", Some(&depth_bomb));
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("nesting deeper"), "{}", reply.body);
    // Width bomb: over the body cap, rejected from the declared length
    // alone (413, before parsing).
    let width_bomb = format!("[{}]", "1,".repeat(40_000));
    let reply = roundtrip(ts.addr, "POST", "/v1/analyze", Some(&width_bomb));
    assert_eq!(reply.status, 413);
    // Torn JSON and huge numbers are 400s.
    for bad in ["{\"n\":", "{\"budget_ms\":1e999}", "not json"] {
        assert_eq!(
            roundtrip(ts.addr, "POST", "/v1/analyze", Some(bad)).status,
            400,
            "accepted {bad:?}"
        );
    }
    // The daemon survived all of it.
    let health = roundtrip(ts.addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(health.json().get("status").unwrap().as_str(), Some("ok"));
}

#[test]
fn invalid_parameters_fail_the_job_not_the_daemon() {
    let ts = TestServer::default_start();
    let id = {
        let _guard = submit_lock();
        submit(ts.addr, "/v1/analyze", r#"{"n":0}"#)
    };
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("failed"));
    assert!(doc.get("error").unwrap().as_str().is_some());
    assert_eq!(roundtrip(ts.addr, "GET", "/healthz", None).status, 200);
}

#[test]
fn routing_edges() {
    let ts = TestServer::default_start();
    assert_eq!(roundtrip(ts.addr, "GET", "/nope", None).status, 404);
    assert_eq!(
        roundtrip(ts.addr, "GET", "/v1/jobs/999999", None).status,
        404
    );
    assert_eq!(roundtrip(ts.addr, "GET", "/v1/jobs/abc", None).status, 400);
    assert_eq!(roundtrip(ts.addr, "GET", "/v1/analyze", None).status, 405);
    assert_eq!(
        roundtrip(ts.addr, "POST", "/metrics", Some("{}")).status,
        405
    );
    // POST without a content-length is 411.
    let mut stream = TcpStream::connect(ts.addr).unwrap();
    stream
        .write_all(b"POST /v1/analyze HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert_eq!(parse_reply(&text).status, 411);
}

#[test]
fn metrics_expose_http_series() {
    let ts = TestServer::default_start();
    // Generate one bad request so the counter is non-zero.
    assert_eq!(
        roundtrip(ts.addr, "POST", "/v1/analyze", Some("broken")).status,
        400
    );
    let reply = roundtrip(ts.addr, "GET", "/metrics", None);
    assert_eq!(reply.status, 200);
    for series in [
        "nvp_http_requests_total",
        "nvp_http_bad_requests_total",
        "nvp_http_rejected_total",
        "nvp_http_panics_total",
        "nvp_http_jobs_submitted_total",
    ] {
        assert!(reply.body.contains(series), "missing {series}");
    }
}

#[test]
fn slow_loris_connections_are_dropped_at_the_request_deadline() {
    let ts = TestServer::start(
        AnalysisEngine::new(),
        ServeConfig {
            read_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    let mut stream = TcpStream::connect(ts.addr).unwrap();
    // Trickle an endless request head one byte at a time: every individual
    // write lands well inside the per-read timeout, so only the total
    // per-request deadline can end this connection.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Filler: ")
        .unwrap();
    let mut closed = false;
    for _ in 0..200 {
        let _ = stream.write_all(b"a");
        std::thread::sleep(Duration::from_millis(30));
        // Poll for the server-side close without blocking the trickle.
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    assert!(closed, "slow-loris connection was never dropped");
    // One shed connection, daemon still healthy.
    assert_eq!(roundtrip(ts.addr, "GET", "/healthz", None).status, 200);
}

/// Value of an unlabelled Prometheus series in a `/metrics` scrape.
fn metric_value(scrape: &str, name: &str) -> f64 {
    scrape
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("series {name} missing from scrape"))
        .trim()
        .parse()
        .unwrap()
}

/// A fresh on-disk store under the system temp dir, wiped per test run.
fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nvp-serve-e2e-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Long enough (24 distinct chain solves) to still be in flight when the
/// drain starts, so the 503 refusal window is deterministic.
const LONG_SWEEP_BODY: &str = r#"{"axis":"gamma","from":300,"to":1500,"steps":24}"#;

#[test]
fn a_drain_refuses_new_work_but_finishes_the_inflight_job() {
    let ts = TestServer::default_start();
    let _guard = submit_lock();
    let id = submit(ts.addr, "/v1/sweep", LONG_SWEEP_BODY);
    // Wait until the job is actually running so the drain has something
    // in flight to wait for.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
        let running = health
            .get("jobs")
            .unwrap()
            .get("running")
            .unwrap()
            .as_u64()
            .unwrap();
        if running >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Trip a manual rejuvenation drain (default mode: in-process swap).
    // `begin_drain` flips the admission state synchronously, so refusals
    // are observable the moment this returns.
    ts.server.rejuvenate();
    let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
    assert_eq!(health.get("state").unwrap().as_str(), Some("draining"));
    let refused = roundtrip(ts.addr, "POST", "/v1/sweep", Some(SWEEP_BODY));
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(
        refused.head.to_ascii_lowercase().contains("retry-after:"),
        "missing retry-after in {}",
        refused.head
    );
    // The in-flight job is not a casualty: it finishes under the drain
    // deadline and stays queryable across the engine swap.
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
    // Once the drain resolves, the daemon serves again and owns up to the
    // rejuvenation in /healthz.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
        let state = health.get("state").unwrap().as_str().unwrap().to_owned();
        let rejuvenations = health.get("rejuvenations").unwrap().as_u64().unwrap();
        if state == "serving" && rejuvenations >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain never resolved: state={state} rejuvenations={rejuvenations}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The renewed engine answers new submissions.
    let id = submit(ts.addr, "/v1/sweep", SWEEP_BODY);
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
}

#[test]
fn rejuvenation_swaps_a_fresh_engine_with_byte_identical_answers() {
    let dir = temp_store("swap");
    let engine = AnalysisEngine::new().with_store(SolveStore::open(&dir).unwrap());
    let ts = TestServer::start(
        engine,
        ServeConfig {
            rejuvenation: RejuvenationPolicy {
                after_jobs: Some(1),
                ..RejuvenationPolicy::default()
            },
            ..ServeConfig::default()
        },
    );
    let factory_dir = dir.clone();
    ts.server
        .set_engine_factory(Arc::new(move || match SolveStore::open(&factory_dir) {
            Ok(store) => AnalysisEngine::new().with_store(store),
            Err(_) => AnalysisEngine::new(),
        }));
    let _guard = submit_lock();
    let first = {
        let id = submit(ts.addr, "/v1/sweep", SWEEP_BODY);
        let doc = await_job(ts.addr, id);
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
        doc.get("result")
            .unwrap()
            .get("csv")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    };
    // The after_jobs=1 trigger trips once that job lands; wait for the
    // swap to complete. `cache_entries == 0` is the proof that a *fresh*
    // engine took over — the old one held all four sweep points.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let health = roundtrip(ts.addr, "GET", "/healthz", None).json();
        let state = health.get("state").unwrap().as_str().unwrap().to_owned();
        let rejuvenations = health.get("rejuvenations").unwrap().as_u64().unwrap();
        let cache_entries = health
            .get("engine")
            .unwrap()
            .get("cache_entries")
            .unwrap()
            .as_u64()
            .unwrap();
        if state == "serving" && rejuvenations >= 1 && cache_entries == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "swap never completed: state={state} rejuvenations={rejuvenations} \
             cache_entries={cache_entries}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The rejuvenation counter lives in the server's own registry, so it
    // survives the engine swap and shows up in the merged scrape.
    let scrape = roundtrip(ts.addr, "GET", "/metrics", None);
    assert_eq!(scrape.status, 200);
    assert!(
        metric_value(&scrape.body, "nvp_engine_rejuvenations_total") >= 1.0,
        "rejuvenation not counted in scrape"
    );
    // Same request against the swapped engine: warm from the persistent
    // store, byte-identical to the pre-rejuvenation answer.
    let second = {
        let id = submit(ts.addr, "/v1/sweep", SWEEP_BODY);
        let doc = await_job(ts.addr, id);
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
        doc.get("result")
            .unwrap()
            .get("csv")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    };
    assert_eq!(first, second, "swapped engine changed the answer");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wait for a flight dump whose filename names `trigger` to appear in
/// `dir`, and return its contents.
fn await_dump(dir: &std::path::Path, trigger: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.contains(&format!("-{trigger}.jsonl")) {
                    return std::fs::read_to_string(entry.path()).unwrap();
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "no {trigger} dump ever appeared in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Schema-check a dump and enforce the cross-thread link rule: it must be
/// a flight dump, and every `job.run` span must link to an `http.request`.
fn check_dump(text: &str) -> nvp_obs::schema::TraceSummary {
    let summary = nvp_obs::schema::check_jsonl(text).unwrap_or_else(|e| {
        panic!("flight dump failed schema check: {e}");
    });
    assert!(summary.flight, "dump is not marked as a flight dump");
    nvp_obs::schema::check_link_rule(&summary, "job.run", "http.request")
        .unwrap_or_else(|e| panic!("link rule violated: {e}"));
    summary
}

#[test]
fn rejuvenation_writes_checker_passing_flight_dumps() {
    let dir = temp_store("flight-rejuvenate");
    let ts = TestServer::start(
        AnalysisEngine::new(),
        ServeConfig {
            flight_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    );
    let id = {
        let _guard = submit_lock();
        submit(ts.addr, "/v1/sweep", SWEEP_BODY)
    };
    await_job(ts.addr, id);
    // A manual rejuvenation covers two triggers at once: the drain-entry
    // dump and the rejuvenation dump written when the swap lands.
    ts.server.rejuvenate();
    let drain_dump = await_dump(&dir, "drain");
    let rejuvenate_dump = await_dump(&dir, "rejuvenate");
    for (tag, text) in [("drain", &drain_dump), ("rejuvenate", &rejuvenate_dump)] {
        let summary = check_dump(text);
        // The triggering request's span chain is in the black box: the
        // HTTP ingress span, and the worker-side job span linked to it.
        for name in ["http.request", "job.run"] {
            assert!(
                summary.span_names.contains_key(name),
                "{tag} dump lost the {name} span: have {:?}",
                summary.span_names.keys().collect::<Vec<_>>()
            );
        }
    }
    // The dump header carries the daemon's aging state for the postmortem.
    let meta = drain_dump.lines().next().unwrap();
    let doc = Json::parse(meta).unwrap();
    let flight = doc.get("flight").unwrap();
    assert_eq!(flight.get("trigger").unwrap().as_str(), Some("drain"));
    assert!(flight
        .get("aging")
        .unwrap()
        .get("jobs_this_cycle")
        .is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-inject")]
#[test]
fn a_job_panic_writes_a_flight_dump_naming_the_job() {
    use nvp_numerics::fault::{arm, FaultMode, FaultPlan, Site};
    let dir = temp_store("flight-panic");
    let ts = TestServer::start(
        AnalysisEngine::new(),
        ServeConfig {
            flight_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    );
    let _guard = submit_lock();
    // One injected panic at the serve-job site: the worker unwinds (the
    // engine's own supervisor never sees it), the job fails, the daemon
    // survives, and the black box hits the disk.
    let id = {
        let _fault = arm(FaultPlan::new(Site::ServeJob, FaultMode::Panic).times(1));
        submit(ts.addr, "/v1/analyze", "{}")
    };
    let doc = await_job(ts.addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("failed"));
    assert!(
        doc.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("panic"),
        "job failed for the wrong reason: {}",
        doc.get("error").unwrap().as_str().unwrap()
    );
    let dump = await_dump(&dir, "panic");
    let summary = check_dump(&dump);
    assert!(summary.span_names.contains_key("job.run"));
    // The dump detail names the panicking job.
    let meta = Json::parse(dump.lines().next().unwrap()).unwrap();
    let detail = meta
        .get("flight")
        .unwrap()
        .get("detail")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert!(detail.contains(&format!("job-{id}")), "detail: {detail}");
    // The daemon is still serving.
    assert_eq!(roundtrip(ts.addr, "GET", "/healthz", None).status, 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_endpoints_expose_recorder_and_aging() {
    let ts = TestServer::default_start();
    let id = {
        let _guard = submit_lock();
        submit(ts.addr, "/v1/analyze", "{}")
    };
    await_job(ts.addr, id);
    // The live ring, served as the same JSONL a trigger would write.
    let reply = roundtrip(ts.addr, "GET", "/v1/debug/recorder", None);
    assert_eq!(reply.status, 200);
    let summary = check_dump(&reply.body);
    assert!(summary.spans >= 1, "recorder served an empty ring");
    // The aging signals the rejuvenation policy would judge.
    let reply = roundtrip(ts.addr, "GET", "/v1/debug/aging", None);
    assert_eq!(reply.status, 200);
    let doc = reply.json();
    assert_eq!(doc.get("state").unwrap().as_str(), Some("serving"));
    assert!(doc.get("aging").unwrap().get("jobs_this_cycle").is_some());
    assert!(doc.get("recorder").unwrap().get("capacity").is_some());
    // No policy armed by default, so nothing would trip.
    assert!(doc
        .get("policy")
        .unwrap()
        .get("would_trip")
        .unwrap()
        .is_null());
    // Read-only: mutating methods are refused.
    assert_eq!(
        roundtrip(ts.addr, "POST", "/v1/debug/recorder", Some("{}")).status,
        405
    );
    assert_eq!(
        roundtrip(ts.addr, "POST", "/v1/debug/aging", Some("{}")).status,
        405
    );
}

#[test]
fn metrics_split_by_endpoint_and_status_class() {
    let ts = TestServer::default_start();
    assert_eq!(roundtrip(ts.addr, "GET", "/healthz", None).status, 200);
    assert_eq!(
        roundtrip(ts.addr, "POST", "/v1/analyze", Some("broken")).status,
        400
    );
    let scrape = roundtrip(ts.addr, "GET", "/metrics", None);
    assert_eq!(scrape.status, 200);
    // The labeled splits coexist with the original aggregate series (old
    // dashboards keep working), under a single TYPE declaration per name.
    assert!(
        scrape
            .body
            .lines()
            .any(|l| l.starts_with("nvp_http_requests_total ")),
        "aggregate requests counter vanished"
    );
    for series in [
        "nvp_http_requests_total{endpoint=\"healthz\",status=\"2xx\"}",
        "nvp_http_requests_total{endpoint=\"analyze\",status=\"4xx\"}",
        "nvp_http_request_nanos_bucket{endpoint=\"healthz\",le=",
        "nvp_http_request_nanos_count{endpoint=\"healthz\"}",
    ] {
        assert!(scrape.body.contains(series), "missing {series}");
    }
    assert_eq!(
        scrape
            .body
            .lines()
            .filter(|l| *l == "# TYPE nvp_http_requests_total counter")
            .count(),
        1,
        "TYPE line must appear exactly once per metric name"
    );
    // Cumulative bucket counts are monotone for every labeled series.
    for endpoint in ["healthz", "metrics", "analyze"] {
        let prefix = format!("nvp_http_request_nanos_bucket{{endpoint=\"{endpoint}\",le=");
        let mut last = 0.0_f64;
        let mut buckets = 0;
        for line in scrape.body.lines().filter(|l| l.starts_with(&prefix)) {
            let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(
                value >= last,
                "bucket counts regressed for {endpoint}: {line}"
            );
            last = value;
            buckets += 1;
        }
        assert!(buckets > 1, "no bucket series for endpoint {endpoint}");
    }
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let ts = TestServer::default_start();
    let mut stream = TcpStream::connect(ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        // Read exactly one response: head, then content-length bytes.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("connection: keep-alive"), "{head}");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).unwrap();
        assert_eq!(
            Json::parse(std::str::from_utf8(&body).unwrap())
                .unwrap()
                .get("status")
                .unwrap()
                .as_str(),
            Some("ok")
        );
    }
}
