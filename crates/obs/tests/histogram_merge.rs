//! Property tests: histogram merge is associative, commutative, and
//! independent of both sample order and how samples are partitioned across
//! histograms — the invariants that make per-worker histograms safe to
//! combine in any reduction order.

use nvp_obs::metrics::{bucket_of, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_associative(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_is_commutative(a in arb_samples(), b in arb_samples()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_identity_is_empty(a in arb_samples()) {
        let sa = snapshot_of(&a);
        prop_assert_eq!(sa.merge(&HistogramSnapshot::empty()), sa.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&sa), sa);
    }

    /// Recording order never matters: a shuffled copy of the samples lands
    /// in an identical snapshot.
    #[test]
    fn snapshot_is_order_independent(a in arb_samples(), seed in any::<u64>()) {
        let mut shuffled = a.clone();
        // Deterministic Fisher–Yates from the seed (no rand dependency).
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(snapshot_of(&a), snapshot_of(&shuffled));
    }

    /// Splitting the samples at any point and merging the two halves equals
    /// recording everything into one histogram.
    #[test]
    fn merge_equals_single_histogram(a in arb_samples(), split in any::<usize>()) {
        let cut = if a.is_empty() { 0 } else { split % (a.len() + 1) };
        let merged = snapshot_of(&a[..cut]).merge(&snapshot_of(&a[cut..]));
        prop_assert_eq!(merged, snapshot_of(&a));
    }

    /// Buckets are deterministic in the value alone.
    #[test]
    fn bucketing_is_deterministic_and_monotone(v in any::<u64>()) {
        prop_assert_eq!(bucket_of(v), bucket_of(v));
        if v > 0 {
            prop_assert!(bucket_of(v - 1) <= bucket_of(v));
        }
    }
}
