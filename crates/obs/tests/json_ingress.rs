//! Adversarial ingress property tests for the hand-rolled JSON parser.
//!
//! `nvp serve` feeds untrusted network bodies straight into `Json::parse`,
//! so the parser must satisfy two contracts under fuzz-shaped input:
//!
//! 1. every value it can represent round-trips: `parse(emit(x)) == x`;
//! 2. no input — deep nesting, torn bytes, huge numbers, lone surrogates —
//!    ever panics, overflows the stack, or returns anything but a typed
//!    error.

use nvp_obs::json::{Json, JsonError, MAX_DEPTH};
use proptest::prelude::*;

/// Finite `f64`s spanning the full bit space (including subnormals, -0.0,
/// and huge magnitudes); NaN/infinity map to 0.0 since `parse` can never
/// produce them.
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    })
}

/// Arbitrary strings including every escape class the emitter handles:
/// quotes, backslashes, control characters, and astral-plane characters.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(|c| char::from_u32(c % 0x11_0000))
            .collect()
    })
}

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        arb_finite_f64().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            prop::collection::vec((arb_string(), inner), 0..4).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_parse_round_trips(value in arb_json()) {
        let text = value.emit();
        let reparsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("emitted text failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, value);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Outcome is irrelevant; the property is "returns, never panics".
        let _ = Json::parse(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn torn_valid_documents_never_panic(value in arb_json(), cut in any::<u16>()) {
        let text = value.emit();
        // Truncate at an arbitrary char boundary: a torn read mid-body.
        let mut at = (cut as usize) % (text.len() + 1);
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        let _ = Json::parse(&text[..at]);
    }

    #[test]
    fn nesting_bombs_error_without_overflow(depth in 1usize..100_000, open in any::<bool>()) {
        let bracket = if open { "[" } else { "{\"k\":" };
        let bomb = bracket.repeat(depth);
        let result = Json::parse(&bomb);
        prop_assert!(result.is_err());
        if depth > MAX_DEPTH {
            // Past the cap the typed depth error fires before any syntax
            // error from the missing closers can be reached.
            prop_assert!(matches!(result, Err(JsonError::TooDeep { .. })));
        }
    }

    #[test]
    fn huge_number_texts_never_become_non_finite(mag in 0u32..100_000, neg in any::<bool>()) {
        let text = format!("{}1e{mag}", if neg { "-" } else { "" });
        match Json::parse(&text) {
            Ok(Json::Num(n)) => prop_assert!(n.is_finite()),
            Ok(other) => prop_assert!(false, "number parsed to {other:?}"),
            Err(_) => {}
        }
    }

    #[test]
    fn lone_surrogate_escapes_are_rejected(cp in 0xD800u32..0xE000) {
        // Any unpaired surrogate escape must be a typed error, not a panic
        // or a mangled char.
        let text = format!("\"\\u{cp:04x}\"");
        if (0xDC00..0xE000).contains(&cp) {
            prop_assert!(Json::parse(&text).is_err(), "lone low surrogate accepted");
        } else {
            // High surrogate followed by nothing / a non-surrogate.
            prop_assert!(Json::parse(&text).is_err());
            let torn = format!("\"\\u{cp:04x}\\u0041\"");
            prop_assert!(Json::parse(&torn).is_err());
        }
    }
}

/// Deterministic companion to the proptests: the documented width bomb — a
/// very wide (not deep) document — stays linear and parseable, so the depth
/// cap cannot be satisfied by a parser that just rejects big inputs.
#[test]
fn wide_documents_still_parse() {
    let mut wide = String::from("[");
    for i in 0..100_000 {
        if i > 0 {
            wide.push(',');
        }
        wide.push('1');
    }
    wide.push(']');
    let Json::Arr(items) = Json::parse(&wide).unwrap() else {
        panic!("expected array");
    };
    assert_eq!(items.len(), 100_000);
}
