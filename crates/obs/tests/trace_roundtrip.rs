//! End-to-end trace recording: spans across threads round-trip through the
//! JSONL exporter, the hand parser, and the schema checker; the chrome
//! export is a valid trace-event JSON array.
//!
//! Recording is process-global, so everything that toggles it lives in this
//! one integration binary behind a shared mutex.

use std::sync::Mutex;

use nvp_obs::schema::{check_chrome, check_jsonl};
use nvp_obs::trace::{
    self, event, event_with, span, write_chrome, write_jsonl, TraceRecord, Value,
};

static RECORDING: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match RECORDING.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn record_sample_trace() -> Vec<TraceRecord> {
    trace::start_recording();
    {
        let mut root = span("sweep.point");
        root.record("index", 0usize);
        root.record("x", 0.25f64);
        {
            let mut explore = span("explore");
            explore.record("tangible_markings", 12u64);
            event_with("fallback", || vec![("method", Value::from("monte-carlo"))]);
        }
        let workers: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut row = span("mrgp.row");
                    row.record("marking", i as u64);
                    event("retry");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let _reward = span("reward");
    }
    trace::stop_recording()
}

#[test]
fn jsonl_round_trips_and_chrome_is_valid_json() {
    let _guard = lock();
    let records = record_sample_trace();
    assert!(
        records.len() >= 7,
        "expected >=7 records, got {}",
        records.len()
    );

    let mut jsonl = Vec::new();
    write_jsonl(&records, &mut jsonl).unwrap();
    let text = String::from_utf8(jsonl).unwrap();
    let summary = check_jsonl(&text).expect("trace passes its own schema");
    assert_eq!(summary.spans, 6); // sweep.point, explore, 3×mrgp.row, reward
    assert_eq!(summary.events, 4); // fallback + 3×retry
    assert_eq!(summary.span_names["mrgp.row"], 3);
    assert_eq!(summary.event_names["retry"], 3);
    // Three spawned threads plus the main thread.
    assert!(summary.threads >= 4, "threads = {}", summary.threads);

    let mut chrome = Vec::new();
    write_chrome(&records, &mut chrome).unwrap();
    let entries = check_chrome(&String::from_utf8(chrome).unwrap()).unwrap();
    assert_eq!(entries, records.len());
}

#[test]
fn parent_links_follow_the_per_thread_stack() {
    let _guard = lock();
    trace::start_recording();
    {
        let outer = span("outer");
        let outer_id = outer.id().unwrap();
        {
            let inner = span("inner");
            assert_ne!(inner.id(), Some(outer_id));
        }
        // A sibling thread must not inherit this thread's open span.
        std::thread::spawn(|| {
            let _isolated = span("isolated");
        })
        .join()
        .unwrap();
    }
    let records = trace::stop_recording();
    let span_of = |name: &str| {
        records
            .iter()
            .find_map(|r| match r {
                TraceRecord::Span(s) if s.name == name => Some(s),
                _ => None,
            })
            .unwrap()
    };
    let outer = span_of("outer");
    let inner = span_of("inner");
    let isolated = span_of("isolated");
    assert_eq!(outer.parent, None);
    assert_eq!(inner.parent, Some(outer.id));
    assert_eq!(inner.tid, outer.tid);
    assert_eq!(isolated.parent, None);
    assert_ne!(isolated.tid, outer.tid);
    assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
}

#[test]
fn events_carry_attributes_and_enclosing_span() {
    let _guard = lock();
    trace::start_recording();
    {
        let sp = span("chain.solve");
        assert!(sp.id().is_some());
        event_with("panic_caught", || {
            vec![
                ("site", Value::from("mrgp-row")),
                ("attempt", Value::from(2u64)),
            ]
        });
    }
    let records = trace::stop_recording();
    let ev = records
        .iter()
        .find_map(|r| match r {
            TraceRecord::Event(e) if e.name == "panic_caught" => Some(e),
            _ => None,
        })
        .unwrap();
    assert!(ev.parent.is_some());
    assert_eq!(ev.attrs[0], ("site", Value::Str("mrgp-row".to_owned())));
    assert_eq!(ev.attrs[1], ("attempt", Value::UInt(2)));
}

#[test]
fn disabled_tracing_records_nothing_and_guards_are_inert() {
    let _guard = lock();
    // Not recording: spans are inert and nothing accumulates.
    let mut sp = span("ignored");
    assert_eq!(sp.id(), None);
    sp.record("key", 1u64);
    event("ignored");
    drop(sp);
    trace::start_recording();
    let records = trace::stop_recording();
    assert!(records.is_empty(), "stray records: {records:?}");
}

#[test]
fn schema_checker_rejects_tampered_traces() {
    let _guard = lock();
    trace::start_recording();
    {
        let _a = span("stage.a");
    }
    let records = trace::stop_recording();
    let mut buf = Vec::new();
    write_jsonl(&records, &mut buf).unwrap();
    let good = String::from_utf8(buf).unwrap();
    assert!(check_jsonl(&good).is_ok());

    // Missing meta line.
    let body_only: String = good.lines().skip(1).collect::<Vec<_>>().join("\n");
    assert!(check_jsonl(&body_only).is_err());
    // Truncated record (torn line).
    let torn = &good[..good.len() - 5];
    assert!(check_jsonl(torn).is_err());
    // Dangling parent link.
    let dangling = good.replace("\"parent\":null", "\"parent\":999999");
    assert!(check_jsonl(&dangling).is_err());
    // Span ending before it starts.
    let inverted = good.replace("\"start_ns\":", "\"start_ns\":99999999999999,\"ignored\":");
    assert!(check_jsonl(&inverted).is_err());

    // Hand-built partial overlap on one thread must be rejected.
    let overlap = "{\"type\":\"meta\",\"version\":1,\"unit\":\"ns\"}\n\
        {\"type\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"tid\":0,\
         \"start_ns\":0,\"end_ns\":10,\"attrs\":{}}\n\
        {\"type\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":null,\"tid\":0,\
         \"start_ns\":5,\"end_ns\":15,\"attrs\":{}}\n";
    let err = check_jsonl(overlap).unwrap_err();
    assert!(err.contains("partially overlaps"), "{err}");

    // Same intervals on different threads are fine.
    let two_threads = overlap.replace(
        "{\"type\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":null,\"tid\":0,",
        "{\"type\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":null,\"tid\":1,",
    );
    assert!(check_jsonl(&two_threads).is_ok());
}
