//! Always-on flight recorder: a fixed-size ring of the most recent trace
//! records, kept at ~zero cost so a postmortem is available the moment
//! something goes wrong.
//!
//! The drainable collector in [`crate::trace`] answers "record this run and
//! hand me everything" — the right shape for a traced CLI invocation, and
//! the wrong one for a daemon that must run for weeks: unbounded memory,
//! and nothing to read when a job panics at 3am with recording off. The
//! recorder inverts the deal: a bounded ring that is *always* capturing,
//! overwriting the oldest record, and dumped on demand (panic-in-job, drain
//! entry, rejuvenation, SIGTERM, or a debug endpoint).
//!
//! Writers never block and never wait for each other beyond one
//! uncontended `try_lock` per record: each slot is its own mutex, the
//! cursor is a fetch-add, and a slot that happens to be held by a
//! concurrent writer or an in-progress dump is simply skipped and counted
//! in `dropped`. The dump path locks slots one at a time, so a dump can
//! run while the daemon keeps serving.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace::{self, TraceRecord, JSONL_VERSION};

/// Default ring capacity when the embedder does not choose one.
pub const DEFAULT_CAPACITY: usize = 4096;

struct Slot {
    /// 1-based push sequence of the record held (0 = empty). Written after
    /// the record under the slot lock; read by dumps to order the ring.
    seq: AtomicU64,
    record: Mutex<Option<TraceRecord>>,
}

/// A fixed-size non-blocking ring buffer of [`TraceRecord`]s.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Total records ever pushed; `cursor % slots.len()` is the next slot.
    cursor: AtomicU64,
    /// Records discarded because their slot was momentarily held.
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with room for the most recent `capacity` records
    /// (minimum 16).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(16);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                record: Mutex::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            slots,
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed over the recorder's lifetime.
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records discarded because their slot was briefly contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append one record, overwriting the oldest. Never blocks: a slot held
    /// by another writer or a dump loses this record to `dropped` instead.
    pub fn push(&self, record: TraceRecord) {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        match slot.record.try_lock() {
            Ok(mut guard) => {
                *guard = Some(record);
                slot.seq.store(n + 1, Ordering::Release);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The ring's contents, oldest first. Slots are locked one at a time,
    /// so concurrent pushes proceed (and may drop against the slot being
    /// read); the snapshot is a consistent *per-slot* view, not a frozen
    /// instant — exactly the fidelity a crash dump needs.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut entries: Vec<(u64, TraceRecord)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let guard = match slot.record.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(record) = guard.as_ref() {
                entries.push((slot.seq.load(Ordering::Acquire), record.clone()));
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, record)| record).collect()
    }
}

fn global() -> &'static OnceLock<Arc<FlightRecorder>> {
    static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    &GLOBAL
}

/// Install the process-global flight recorder and start capturing into it.
///
/// Idempotent: the first call sizes the ring; later calls return the
/// existing recorder (a process has one black box). Spans and events flow
/// into the ring from this moment on, whether or not the drainable
/// collector is also recording.
pub fn install(capacity: usize) -> Arc<FlightRecorder> {
    let recorder = global()
        .get_or_init(|| Arc::new(FlightRecorder::new(capacity)))
        .clone();
    trace::set_flight_capture(true);
    recorder
}

/// The installed recorder, if any.
pub fn installed() -> Option<Arc<FlightRecorder>> {
    global().get().cloned()
}

/// Trace-side tee: called by the span/event machinery for every finished
/// record while the flight capture bit is set.
pub(crate) fn tee(record: TraceRecord) {
    if let Some(recorder) = global().get() {
        recorder.push(record);
    }
}

/// Context stamped into a dump's meta line so each dump file is a
/// self-contained postmortem: why it was taken and what the daemon knew
/// about its own aging at that moment.
#[derive(Debug, Clone, Default)]
pub struct DumpContext {
    /// Why the dump was taken: `panic`, `drain`, `rejuvenate`, `signal`,
    /// `inspect`, ...
    pub trigger: String,
    /// Free-form detail (tripped trigger name, drain reason, job id).
    pub detail: String,
    /// The serving state (`/healthz` `state` field) at dump time.
    pub state: String,
    /// Aging signals at dump time, as `(key, value)` pairs — kept untyped
    /// here so `nvp-obs` does not depend on the serve crate's
    /// `AgingSnapshot` type.
    pub aging: Vec<(&'static str, u64)>,
}

/// Serialize a dump as schema-valid JSONL: one meta line (version 1 plus a
/// `"flight"` object carrying the [`DumpContext`] and ring statistics),
/// then the ring's records oldest-first.
///
/// Because the ring evicts, a dump may reference spans that have already
/// been overwritten (a `parent` or `link` with no matching record); the
/// schema checker's flight mode tolerates exactly that.
pub fn write_dump(
    recorder: &FlightRecorder,
    context: &DumpContext,
    out: &mut dyn Write,
) -> io::Result<()> {
    let records = recorder.snapshot();
    let mut meta = format!("{{\"type\":\"meta\",\"version\":{JSONL_VERSION},\"unit\":\"ns\"");
    meta.push_str(",\"flight\":{\"trigger\":");
    crate::json::escape_into(&context.trigger, &mut meta);
    meta.push_str(",\"detail\":");
    crate::json::escape_into(&context.detail, &mut meta);
    meta.push_str(",\"state\":");
    crate::json::escape_into(&context.state, &mut meta);
    meta.push_str(&format!(
        ",\"capacity\":{},\"pushed\":{},\"dropped\":{},\"records\":{}",
        recorder.capacity(),
        recorder.pushed(),
        recorder.dropped(),
        records.len()
    ));
    meta.push_str(",\"aging\":{");
    for (i, (key, value)) in context.aging.iter().enumerate() {
        if i > 0 {
            meta.push(',');
        }
        crate::json::escape_into(key, &mut meta);
        meta.push_str(&format!(":{value}"));
    }
    meta.push_str("}}}");
    writeln!(out, "{meta}")?;
    for record in &records {
        writeln!(out, "{}", trace::record_to_jsonl(record))?;
    }
    Ok(())
}

/// [`write_dump`] into a `String` (for debug endpoints and tests).
pub fn dump_to_string(recorder: &FlightRecorder, context: &DumpContext) -> String {
    let mut bytes = Vec::new();
    // Writing to a Vec cannot fail.
    let _ = write_dump(recorder, context, &mut bytes);
    String::from_utf8(bytes).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventRecord, SpanRecord};

    fn span_record(id: u64) -> TraceRecord {
        TraceRecord::Span(SpanRecord {
            id,
            parent: None,
            link: None,
            tid: 0,
            name: "test.span",
            start_ns: id * 10,
            end_ns: id * 10 + 5,
            attrs: Vec::new(),
        })
    }

    #[test]
    fn the_ring_keeps_the_newest_records_in_push_order() {
        let recorder = FlightRecorder::new(16);
        for id in 1..=40 {
            recorder.push(span_record(id));
        }
        let records = recorder.snapshot();
        assert_eq!(records.len(), 16);
        let ids: Vec<u64> = records
            .iter()
            .map(|r| match r {
                TraceRecord::Span(s) => s.id,
                TraceRecord::Event(_) => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (25..=40).collect::<Vec<u64>>());
        assert_eq!(recorder.pushed(), 40);
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn concurrent_writers_never_block_and_account_for_drops() {
        let recorder = Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let recorder = Arc::clone(&recorder);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    recorder.push(span_record(t * 1000 + i + 1));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(recorder.pushed(), 4000);
        // Every push either landed in a slot or was counted dropped; the
        // ring itself holds at most capacity records.
        assert!(recorder.snapshot().len() <= 64);
        assert!(recorder.dropped() <= 4000);
    }

    #[test]
    fn a_dump_is_schema_valid_jsonl_with_a_flight_meta() {
        let recorder = FlightRecorder::new(16);
        recorder.push(span_record(1));
        recorder.push(TraceRecord::Event(EventRecord {
            parent: Some(1),
            tid: 0,
            name: "test.event",
            ts_ns: 12,
            attrs: Vec::new(),
        }));
        let context = DumpContext {
            trigger: "panic".to_owned(),
            detail: "job 7".to_owned(),
            state: "serving".to_owned(),
            aging: vec![("jobs_this_cycle", 7), ("panic_streak", 1)],
        };
        let text = dump_to_string(&recorder, &context);
        let summary = crate::schema::check_jsonl(&text).expect("dump must be schema-valid");
        assert!(
            summary.flight,
            "dump meta must be detected as a flight dump"
        );
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.events, 1);
        // The meta line is real JSON carrying the context.
        let meta = crate::json::Json::parse(text.lines().next().unwrap()).unwrap();
        let flight = meta.get("flight").unwrap();
        assert_eq!(flight.get("trigger").unwrap().as_str(), Some("panic"));
        assert_eq!(
            flight
                .get("aging")
                .unwrap()
                .get("jobs_this_cycle")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn dumps_tolerate_evicted_parents() {
        // A ring where every surviving span's parent (and cross-thread
        // link) has been overwritten: the dump still checks out, because
        // flight mode tolerates references to evicted records.
        let recorder = FlightRecorder::new(16);
        for id in 1..=32u64 {
            let mut record = span_record(id);
            if let TraceRecord::Span(s) = &mut record {
                s.parent = id.checked_sub(16).filter(|&p| p > 0);
                s.link = id.checked_sub(20).filter(|&p| p > 0);
            }
            recorder.push(record);
        }
        let text = dump_to_string(&recorder, &DumpContext::default());
        let summary = crate::schema::check_jsonl(&text).expect("dangling parents must pass");
        assert_eq!(summary.spans, 16);
    }
}
