//! Span-based tracing with parent links, worker-thread ids, and typed events.
//!
//! Recording is process-global and off by default. Every instrumentation
//! point first checks one relaxed atomic ([`enabled`]); when recording is
//! off, [`span`] returns an inert guard and [`event`] returns immediately,
//! so the compiled-in cost is a load and a branch. When recording is on,
//! spans capture monotonic enter/exit timestamps (nanoseconds since a
//! process-wide epoch), the dense id of the thread they ran on, the
//! innermost open span on that thread as their parent, and any key/value
//! attributes recorded before the guard drops. Finished records accumulate
//! in a global collector drained by [`stop_recording`].
//!
//! Thread ids are dense `u32`s handed out on first use per OS thread — the
//! same numbering is reused by worker pools, so a trace shows which worker
//! executed each MRGP row or sweep point.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json;

/// Capture destinations, packed into one atomic so the disabled fast path
/// stays a single relaxed load. Bit 0: the drainable collector
/// ([`start_recording`]/[`stop_recording`]). Bit 1: the process-global
/// flight recorder ring ([`crate::recorder`]).
const CAPTURE_COLLECT: u8 = 1 << 0;
const CAPTURE_FLIGHT: u8 = 1 << 1;

static CAPTURE: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static THREAD_ID: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
    // Ids of the open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Dense id of the calling thread (assigned on first use).
pub fn thread_id() -> u32 {
    THREAD_ID.with(|c| {
        let mut id = c.get();
        if id == u32::MAX {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) if f.is_finite() => out.push_str(&format!("{f}")),
        // JSON has no NaN/Inf; stringify the exceptional values.
        Value::Float(f) => json::escape_into(&format!("{f}"), out),
        Value::Str(s) => json::escape_into(s, out),
    }
}

/// A completed span: a named interval on one thread.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    /// Causal parent on *another* thread (cross-thread handoff): the span
    /// that requested this work, e.g. the `http.request` span that
    /// submitted a `job.run`. Unlike `parent`, a link carries no nesting or
    /// containment contract — the linked span usually closes long before
    /// this one does.
    pub link: Option<u64>,
    pub tid: u32,
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
    pub attrs: Vec<(&'static str, Value)>,
}

/// An instantaneous typed event (fallback taken, panic caught, ...).
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub parent: Option<u64>,
    pub tid: u32,
    pub name: &'static str,
    pub ts_ns: u64,
    pub attrs: Vec<(&'static str, Value)>,
}

/// One entry in a drained trace.
#[derive(Debug, Clone)]
pub enum TraceRecord {
    Span(SpanRecord),
    Event(EventRecord),
}

fn collector() -> &'static Mutex<Vec<TraceRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<TraceRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn push_record(record: TraceRecord) {
    let capture = CAPTURE.load(Ordering::Relaxed);
    if capture & CAPTURE_FLIGHT != 0 {
        if capture & CAPTURE_COLLECT != 0 {
            crate::recorder::tee(record.clone());
        } else {
            crate::recorder::tee(record);
            return;
        }
    }
    let mut guard = match collector().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.push(record);
}

/// Whether any capture destination (collector or flight recorder) is
/// currently on. One relaxed load; this is the only cost instrumentation
/// pays when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed) != 0
}

/// Turns the flight-recorder capture bit on or off. Called by
/// [`crate::recorder::install`]; never cleared once a recorder exists.
pub(crate) fn set_flight_capture(on: bool) {
    if on {
        CAPTURE.fetch_or(CAPTURE_FLIGHT, Ordering::SeqCst);
    } else {
        CAPTURE.fetch_and(!CAPTURE_FLIGHT, Ordering::SeqCst);
    }
}

/// Clear the collector and start recording spans and events.
pub fn start_recording() {
    {
        let mut guard = match collector().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clear();
    }
    CAPTURE.fetch_or(CAPTURE_COLLECT, Ordering::SeqCst);
}

/// Stop recording and drain all records collected since [`start_recording`].
pub fn stop_recording() -> Vec<TraceRecord> {
    CAPTURE.fetch_and(!CAPTURE_COLLECT, Ordering::SeqCst);
    let mut guard = match collector().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    std::mem::take(&mut *guard)
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    link: Option<u64>,
    tid: u32,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, Value)>,
}

/// RAII guard for an open span; the span closes when the guard drops.
/// Inert (all methods no-ops) when recording was off at creation time.
pub struct SpanGuard {
    active: Option<Box<ActiveSpan>>,
}

/// A cheap, copyable reference to a live span, safe to move across
/// threads. Obtained from [`SpanGuard::handle`] and redeemed by
/// [`span_linked`] to attach a causal cross-thread parent to work executed
/// elsewhere (an HTTP request span handing off to a job-worker span).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle {
    id: u64,
}

impl SpanHandle {
    /// The id of the span this handle points at.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Open a span. The innermost span already open on this thread becomes the
/// parent. Returns an inert guard when recording is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_linked(name, None)
}

/// Open a span with an explicit cross-thread causal parent.
///
/// The same-thread `parent` is still taken from this thread's open-span
/// stack; `link` additionally names the span (usually on another thread)
/// whose work this span is carrying out. Returns an inert guard when
/// recording is disabled.
#[inline]
pub fn span_linked(name: &'static str, link: Option<SpanHandle>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = thread_id();
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        active: Some(Box::new(ActiveSpan {
            id,
            parent,
            link: link.map(|h| h.id),
            tid,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
        })),
    }
}

impl SpanGuard {
    /// Attach a key/value attribute to the span (no-op when inert).
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.into()));
        }
    }

    /// The span id, if the guard is live (recording was enabled).
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// A copyable cross-thread handle to this span, for [`span_linked`].
    /// `None` when the guard is inert.
    pub fn handle(&self) -> Option<SpanHandle> {
        self.active.as_ref().map(|a| SpanHandle { id: a.id })
    }

    /// True when the guard is a disabled-recording no-op; lets callers skip
    /// attribute computation that is only worth doing for a live span.
    pub fn is_inert(&self) -> bool {
        self.active.is_none()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = now_ns();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top of the
            // stack is this span. Be defensive anyway: remove by id.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        push_record(TraceRecord::Span(SpanRecord {
            id: active.id,
            parent: active.parent,
            link: active.link,
            tid: active.tid,
            name: active.name,
            start_ns: active.start_ns,
            end_ns,
            attrs: active.attrs,
        }));
    }
}

/// Record an instantaneous event with no attributes.
#[inline]
pub fn event(name: &'static str) {
    if !enabled() {
        return;
    }
    emit_event(name, Vec::new());
}

/// Record an instantaneous event; `attrs` is only invoked when recording is
/// enabled, so attribute construction costs nothing on the disabled path.
#[inline]
pub fn event_with(name: &'static str, attrs: impl FnOnce() -> Vec<(&'static str, Value)>) {
    if !enabled() {
        return;
    }
    emit_event(name, attrs());
}

fn emit_event(name: &'static str, attrs: Vec<(&'static str, Value)>) {
    let tid = thread_id();
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    push_record(TraceRecord::Event(EventRecord {
        parent,
        tid,
        name,
        ts_ns: now_ns(),
        attrs,
    }));
}

fn write_attrs(out: &mut String, attrs: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(k, out);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// Serialize one record as a single JSON line (no trailing newline).
pub fn record_to_jsonl(record: &TraceRecord) -> String {
    let mut out = String::with_capacity(128);
    match record {
        TraceRecord::Span(s) => {
            out.push_str("{\"type\":\"span\",\"name\":");
            json::escape_into(s.name, &mut out);
            out.push_str(&format!(
                ",\"id\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"end_ns\":{},",
                s.id,
                s.parent.map_or("null".to_owned(), |p| p.to_string()),
                s.tid,
                s.start_ns,
                s.end_ns
            ));
            // `link` is optional in the schema: absent means "no
            // cross-thread parent", so version 1 readers keep working.
            if let Some(link) = s.link {
                out.push_str(&format!("\"link\":{link},"));
            }
            out.push_str("\"attrs\":");
            write_attrs(&mut out, &s.attrs);
            out.push('}');
        }
        TraceRecord::Event(e) => {
            out.push_str("{\"type\":\"event\",\"name\":");
            json::escape_into(e.name, &mut out);
            out.push_str(&format!(
                ",\"parent\":{},\"tid\":{},\"ts_ns\":{},\"attrs\":",
                e.parent.map_or("null".to_owned(), |p| p.to_string()),
                e.tid,
                e.ts_ns
            ));
            write_attrs(&mut out, &e.attrs);
            out.push('}');
        }
    }
    out
}

/// Current JSONL trace schema version (bumped on breaking changes).
pub const JSONL_VERSION: u64 = 1;

/// Write a drained trace as JSONL: one meta line, then one line per record.
pub fn write_jsonl(records: &[TraceRecord], out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":{JSONL_VERSION},\"unit\":\"ns\"}}"
    )?;
    for record in records {
        writeln!(out, "{}", record_to_jsonl(record))?;
    }
    Ok(())
}

/// Write a drained trace in the `chrome://tracing` JSON array format.
///
/// Spans become complete (`"ph":"X"`) duration events and events become
/// thread-scoped instants (`"ph":"i"`); timestamps are microseconds as
/// required by the trace-event spec.
pub fn write_chrome(records: &[TraceRecord], out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"[")?;
    let mut first = true;
    let mut entry = String::with_capacity(160);
    for record in records {
        if !first {
            out.write_all(b",\n")?;
        }
        first = false;
        entry.clear();
        match record {
            TraceRecord::Span(s) => {
                entry.push_str("{\"name\":");
                json::escape_into(s.name, &mut entry);
                entry.push_str(&format!(
                    ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":",
                    s.tid,
                    s.start_ns as f64 / 1000.0,
                    (s.end_ns - s.start_ns) as f64 / 1000.0
                ));
                write_attrs(&mut entry, &s.attrs);
                entry.push('}');
            }
            TraceRecord::Event(e) => {
                entry.push_str("{\"name\":");
                json::escape_into(e.name, &mut entry);
                entry.push_str(&format!(
                    ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":",
                    e.tid,
                    e.ts_ns as f64 / 1000.0
                ));
                write_attrs(&mut entry, &e.attrs);
                entry.push('}');
            }
        }
        out.write_all(entry.as_bytes())?;
    }
    out.write_all(b"]\n")?;
    Ok(())
}
