//! Process-lifetime metrics: counters, gauges, and log-scale histograms
//! behind a named registry with Prometheus-style text exposition.
//!
//! Handles are cheap `Arc`-backed clones over atomics, so the engine keeps
//! the handle it increments on the hot path while the registry renders the
//! same cells on demand — the human-readable stats and the machine-readable
//! exposition read identical storage and can never drift.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (with a max-tracking helper for
/// high-water marks).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i`
/// (1..=64) holds values whose bit length is `i`, i.e. `2^(i-1) <= v < 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value under the log2 scheme. Deterministic: depends
/// only on the value, never on insertion order or timing.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Concurrent log2-bucketed histogram over `u64` samples (latencies are
/// recorded in nanoseconds).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a histogram's state. Merging snapshots is a per-bucket
/// wrapping add — the same arithmetic the atomic `record` path uses — which
/// makes merge associative, commutative, and independent of the order
/// samples were recorded in, even in the (unreachable in practice: 2^64 ns
/// ≈ 585 years) overflow regime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        Self::default()
    }

    /// Combine two snapshots (e.g. from per-worker histograms).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_add(other.buckets[i])),
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket such that at least `q` (0..=1) of
    /// the samples fall at or below it. Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Named registry of metrics. Registration is get-or-create, so handing the
/// same name to two subsystems shares one cell; asking for an existing name
/// with a different kind panics (a wiring bug, not a runtime condition).
///
/// A metric may carry multiple *labeled series*: the `_with` constructors
/// take a pre-rendered Prometheus label body (`endpoint="analyze",
/// status="2xx"` — no braces) and register an independent cell per label
/// set under one metric name. The plain constructors are the empty-label
/// case, so an aggregate series and its labeled splits coexist under the
/// same name — exactly what dashboards migrating from the aggregate need.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<(&'static str, &'static str), Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        labels: &'static str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut map = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let metric = map.entry((name, labels)).or_insert_with(make).clone();
        // One name, one kind, across every label set: Prometheus emits a
        // single TYPE line per name, so a mixed-kind name is a wiring bug.
        for ((other_name, _), other) in map.range((name, "")..) {
            if *other_name != name {
                break;
            }
            assert_eq!(
                other.kind(),
                metric.kind(),
                "metric {name:?} registered with conflicting kinds"
            );
        }
        metric
    }

    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, "")
    }

    /// A counter series under `name` distinguished by `labels` (a rendered
    /// Prometheus label body without braces; empty = the unlabeled series).
    pub fn counter_with(&self, name: &'static str, labels: &'static str) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, "")
    }

    /// A gauge series under `name` distinguished by `labels`.
    pub fn gauge_with(&self, name: &'static str, labels: &'static str) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, "")
    }

    /// A histogram series under `name` distinguished by `labels`.
    pub fn histogram_with(&self, name: &'static str, labels: &'static str) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format: one `# TYPE` line per metric name (sorted), then one line —
    /// or one cumulative bucket block — per labeled series. Histogram
    /// buckets are cumulative and elided past the last non-empty bucket;
    /// the mandatory `+Inf` bucket, `_sum`, and `_count` always close the
    /// block.
    pub fn render_prometheus(&self) -> String {
        let metrics: Vec<((&'static str, &'static str), Metric)> = {
            let map = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            map.iter().map(|(k, v)| (*k, v.clone())).collect()
        };
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), metric) in metrics {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
                last_name = name;
            }
            // `{labels}` suffix for a plain sample line; empty labels mean
            // a bare series name.
            let series_suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{series_suffix} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{series_suffix} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    // `le` joins any series labels inside one brace pair.
                    let le_prefix = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{labels},")
                    };
                    let last_nonzero = snap.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate().take(last_nonzero + 1) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{le_prefix}le=\"{}\"}} {cumulative}",
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{{le_prefix}le=\"+Inf\"}} {}",
                        snap.count
                    );
                    let _ = writeln!(out, "{name}_sum{series_suffix} {}", snap.sum);
                    let _ = writeln!(out, "{name}_count{series_suffix} {}", snap.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every value lands within its bucket's bounds.
        for v in [0u64, 1, 2, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.mean(), 251.5);
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[10], 1); // 1000
    }

    #[test]
    fn quantile_upper_bound_walks_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1 << 20);
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_bound(0.5), 1);
        assert_eq!(snap.quantile_upper_bound(1.0), (1u64 << 21) - 1);
        assert_eq!(HistogramSnapshot::empty().quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn registry_is_get_or_create_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("nvp_test_total");
        let b = reg.counter("nvp_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("nvp_test_gauge");
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_panics_on_kind_mismatch() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("nvp_test_total");
        let _ = reg.gauge("nvp_test_total");
    }

    #[test]
    fn prometheus_rendering_has_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("nvp_hits_total").add(5);
        reg.gauge("nvp_workers").set(4);
        let h = reg.histogram("nvp_latency_ns");
        h.record(1);
        h.record(3);
        h.record(900);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE nvp_hits_total counter\nnvp_hits_total 5\n"));
        assert!(text.contains("# TYPE nvp_workers gauge\nnvp_workers 4\n"));
        assert!(text.contains("nvp_latency_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("nvp_latency_ns_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("nvp_latency_ns_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("nvp_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("nvp_latency_ns_sum 904\n"));
        assert!(text.contains("nvp_latency_ns_count 3\n"));
    }

    #[test]
    fn labeled_series_share_one_type_line_and_coexist_with_the_aggregate() {
        let reg = MetricsRegistry::new();
        reg.counter("nvp_req_total").add(3);
        reg.counter_with("nvp_req_total", "endpoint=\"analyze\",status=\"2xx\"")
            .add(2);
        reg.counter_with("nvp_req_total", "endpoint=\"sweep\",status=\"4xx\"")
            .inc();
        reg.histogram_with("nvp_req_ns", "endpoint=\"analyze\"")
            .record(5);
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# TYPE nvp_req_total counter").count(),
            1,
            "one TYPE line per metric name:\n{text}"
        );
        assert!(text.contains("nvp_req_total 3\n"));
        assert!(text.contains("nvp_req_total{endpoint=\"analyze\",status=\"2xx\"} 2\n"));
        assert!(text.contains("nvp_req_total{endpoint=\"sweep\",status=\"4xx\"} 1\n"));
        // Histogram labels and `le` share one brace pair.
        assert!(text.contains("nvp_req_ns_bucket{endpoint=\"analyze\",le=\"7\"} 1\n"));
        assert!(text.contains("nvp_req_ns_sum{endpoint=\"analyze\"} 5\n"));
        assert!(text.contains("nvp_req_ns_count{endpoint=\"analyze\"} 1\n"));
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn labeled_series_cannot_change_the_kind_of_a_name() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("nvp_mixed");
        let _ = reg.histogram_with("nvp_mixed", "endpoint=\"x\"");
    }

    /// Satellite check for the exposition format itself: *parse* the text
    /// and verify every histogram block is spec-compliant — cumulative
    /// bucket counts that never decrease, a final `+Inf` bucket equal to
    /// `_count`, and `le` bounds strictly increasing.
    #[test]
    fn parsed_exposition_has_monotonic_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("nvp_parse_ns");
        for v in [1u64, 1, 3, 9, 1000, 65_000] {
            h.record(v);
        }
        let labeled = reg.histogram_with("nvp_parse_ns", "endpoint=\"healthz\"");
        for v in [2u64, 4, 4, 4096] {
            labeled.record(v);
        }
        let text = reg.render_prometheus();

        // series label body -> (le bounds, cumulative counts), parsed back
        // out of the exposition text.
        let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            if let Some(rest) = series.strip_prefix("nvp_parse_ns_bucket{") {
                let body = rest.strip_suffix('}').expect("closing brace");
                let (labels, le) = match body.split_once(",le=\"") {
                    Some((labels, le)) => (labels.to_owned(), le),
                    None => (String::new(), body.strip_prefix("le=\"").unwrap()),
                };
                let le = le.strip_suffix('"').expect("closing quote");
                let bound: f64 = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                buckets
                    .entry(labels)
                    .or_default()
                    .push((bound, value.parse().unwrap()));
            } else if let Some(rest) = series.strip_prefix("nvp_parse_ns_count") {
                let labels = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .unwrap_or("");
                counts.insert(labels.to_owned(), value.parse().unwrap());
            }
        }
        assert_eq!(buckets.len(), 2, "two series expected:\n{text}");
        for (labels, rows) in &buckets {
            assert!(rows.len() >= 2, "series {labels:?} too short");
            for pair in rows.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "series {labels:?}: le bounds not increasing"
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "series {labels:?}: cumulative counts decreased"
                );
            }
            let (last_bound, last_count) = *rows.last().unwrap();
            assert!(last_bound.is_infinite(), "series {labels:?}: missing +Inf");
            assert_eq!(
                Some(&last_count),
                counts.get(labels.as_str()),
                "series {labels:?}: +Inf bucket != _count"
            );
        }
        assert_eq!(counts.get(""), Some(&6));
        assert_eq!(counts.get("endpoint=\"healthz\""), Some(&4));
    }
}
