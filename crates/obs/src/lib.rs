//! Zero-external-dependency structured observability for the nvp workspace.
//!
//! The solve pipeline (reachability exploration → vanishing elimination →
//! MRGP row solves → reward integration → sweep supervision) runs across
//! worker threads behind a memoizing cache; aggregate counters alone cannot
//! answer "where did the time go" or "which worker solved what". This crate
//! provides the introspection surface:
//!
//! - [`trace`]: span-based tracing with monotonic enter/exit timestamps,
//!   parent links, per-thread worker ids, and key/value attributes, plus
//!   typed instantaneous events for resilience machinery (fallback taken,
//!   panic caught, rejuvenation, retry, journal replay). Recording is off by
//!   default and gated behind a single relaxed atomic load so disabled
//!   tracing stays out of hot loops.
//! - [`metrics`]: a registry of counters, gauges, and log-scale latency
//!   histograms with deterministic, mergeable buckets. `SolverStats` in
//!   `nvp-core` is rebuilt on top of these handles so the human-readable
//!   stats and the machine-readable exposition can never drift.
//! - [`sink`]: a process-wide stderr diagnostics sink with one line-buffered
//!   writer, so warnings never interleave with CSV output or each other.
//! - [`progress`]: rate-limited live sweep progress (completed/total,
//!   points/s, ETA, degraded/retried counts), suppressed when stderr is not
//!   a terminal or the sink is quiet.
//! - [`json`] / [`schema`]: a hand-rolled JSON parser and trace schema
//!   checkers used by tests and by the `nvp-trace-check` binary to validate
//!   JSONL and `chrome://tracing` exports without serde.

pub mod json;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod schema;
pub mod sink;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use trace::{event, event_with, span, span_linked, SpanGuard, SpanHandle, TraceRecord, Value};
