//! Minimal hand-rolled JSON writer/parser (no serde).
//!
//! The parser is a recursive-descent reader over the full JSON grammar,
//! used by [`crate::schema`] to validate trace exports and by tests to
//! round-trip every emitted record. Numbers are held as `f64`; the ids and
//! nanosecond timestamps the trace emits stay well inside the 2^53 range
//! where that is exact.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be followed
                            // by \uDC00-\uDFFF.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err("lone high surrogate".to_owned());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                            } else {
                                out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                            }
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through: find the char at
                    // this byte boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_owned())?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control char {:?}", c));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_owned());
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_owned())?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// Append `s` as a JSON string literal (with surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":{"d":false},"e":""}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Obj(vec![("b".to_owned(), Json::Null)]),
            ])
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
        assert_eq!(v.get("e").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\\\" \u{1} π😀";
        let mut encoded = String::new();
        escape_into(original, &mut encoded);
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
