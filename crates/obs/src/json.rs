//! Minimal hand-rolled JSON writer/parser (no serde).
//!
//! The parser is a recursive-descent reader over the full JSON grammar,
//! used by [`crate::schema`] to validate trace exports, by tests to
//! round-trip every emitted record, and by `nvp serve` on untrusted network
//! bodies. Numbers are held as `f64`; the ids and nanosecond timestamps the
//! trace emits stay well inside the 2^53 range where that is exact.
//!
//! Because request bodies arrive from the network, the parser is hardened
//! against adversarial input: nesting depth is capped at [`MAX_DEPTH`] (a
//! few thousand `[` bytes would otherwise overflow the stack), non-finite
//! numbers are rejected, and every failure is a typed [`JsonError`] rather
//! than a panic.

use std::fmt::Write as _;

/// Maximum container nesting depth [`Json::parse`] accepts. Deep enough for
/// any legitimate trace or request document, shallow enough that the
/// recursive-descent parser cannot be driven into stack overflow.
pub const MAX_DEPTH: usize = 128;

/// Largest `f64` value that is still an exactly-representable integer
/// boundary: 2^53. Integral doubles at or above this have already lost
/// low-order bits at parse time, so they are rejected by [`Json::as_u64`].
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Container nesting exceeded [`MAX_DEPTH`].
    TooDeep {
        /// The enforced depth limit.
        limit: usize,
        /// Byte offset of the opening bracket that crossed the limit.
        at: usize,
    },
    /// Any other grammar violation.
    Syntax {
        /// Byte offset where the violation was detected.
        at: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::TooDeep { limit, at } => {
                write!(f, "nesting deeper than {limit} levels at byte {at}")
            }
            JsonError::Syntax { at, message } => write!(f, "{message} at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.syntax("trailing data"));
        }
        Ok(value)
    }

    /// Serialize to compact JSON text. The inverse of [`Json::parse`]:
    /// numbers use `f64`'s shortest round-tripping `Display` form, so
    /// `parse(x.emit()) == x` for every parseable value. Non-finite numbers
    /// (which `parse` never produces) are emitted as `null`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    /// Append the compact serialization of `self` to `out`.
    pub fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` if it is a non-negative integer in the *safe*
    /// range `0..2^53`, where every integer is exactly representable as an
    /// `f64`. Integral values at or above 2^53 are rejected: distinct
    /// decimal texts can collapse to the same double at parse time (and
    /// `18446744073709551616` would otherwise saturate the cast to
    /// `u64::MAX`), so accepting them would let ids alias.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < MAX_SAFE_INTEGER => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn syntax(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.syntax(format!(
                "expected '{}', found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                let v = self.object()?;
                self.depth -= 1;
                Ok(v)
            }
            Some(b'[') => {
                self.descend()?;
                let v = self.array()?;
                self.depth -= 1;
                Ok(v)
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(self.syntax(format!("unexpected {:?}", other.map(|c| c as char)))),
        }
    }

    /// Charge one container level against [`MAX_DEPTH`] before recursing.
    fn descend(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::TooDeep {
                limit: MAX_DEPTH,
                at: self.pos,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(self.syntax(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.syntax(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.syntax("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be followed
                            // by \uDC00-\uDFFF.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.syntax("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.syntax("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.syntax("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.syntax("bad \\u escape"))?,
                                );
                            }
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(
                                self.syntax(format!("bad escape {:?}", other.map(|c| c as char)))
                            );
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through: find the char at
                    // this byte boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.syntax("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.syntax(format!("unescaped control char {c:?}")));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.syntax("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.syntax("bad \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.syntax("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let value = text.parse::<f64>().map_err(|_| JsonError::Syntax {
            at: start,
            message: format!("invalid number {text:?}"),
        })?;
        // `"1e999".parse::<f64>()` succeeds with infinity; a hardened
        // ingress must not let magnitude bombs smuggle non-finite values
        // into the solvers.
        if !value.is_finite() {
            return Err(JsonError::Syntax {
                at: start,
                message: format!("number {text:?} out of range"),
            });
        }
        Ok(Json::Num(value))
    }
}

/// Append `s` as a JSON string literal (with surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":{"d":false},"e":""}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Obj(vec![("b".to_owned(), Json::Null)]),
            ])
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
        assert_eq!(v.get("e").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\\\" \u{1} π😀";
        let mut encoded = String::new();
        escape_into(original, &mut encoded);
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
    }

    #[test]
    fn emit_round_trips_structures() {
        let doc = r#"{"a":[1,2,{"b":null}],"c":{"d":false},"e":"x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        // Non-finite numbers cannot come out of parse; emit degrades them
        // to null instead of producing unparseable text.
        assert_eq!(Json::Num(f64::INFINITY).emit(), "null");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn as_u64_boundaries_at_the_safe_integer_limit() {
        // 2^53 - 1 is the largest exactly-representable integer id.
        assert_eq!(
            Json::Num(9007199254740991.0).as_u64(),
            Some(9007199254740991)
        );
        // 2^53 itself is where distinct texts start aliasing: both
        // 9007199254740992 and 9007199254740993 parse to the same double.
        let lo = Json::parse("9007199254740992").unwrap();
        let hi = Json::parse("9007199254740993").unwrap();
        assert_eq!(lo, hi, "texts alias at 2^53, so both must be rejected");
        assert_eq!(lo.as_u64(), None);
        assert_eq!(hi.as_u64(), None);
        // 2^64: `u64::MAX as f64` rounds up to exactly this value; the old
        // `<=` bound accepted it and the cast saturated to u64::MAX.
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Json::Num(u64::MAX as f64).as_u64(), None);
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_crash() {
        // Regression: this used to recurse once per '[' and overflow the
        // stack long before 100k levels.
        let mut bomb = String::new();
        bomb.push_str(&"[".repeat(100_000));
        bomb.push_str(&"]".repeat(100_000));
        match Json::parse(&bomb) {
            Err(JsonError::TooDeep { limit, .. }) => assert_eq!(limit, MAX_DEPTH),
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // Unclosed variant must fail identically (never reaches the ']'s).
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        assert!(Json::parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn depth_limit_is_exact() {
        let nested = |depth: usize| {
            let mut s = String::new();
            s.push_str(&"[".repeat(depth));
            s.push('1');
            s.push_str(&"]".repeat(depth));
            s
        };
        assert!(Json::parse(&nested(MAX_DEPTH)).is_ok());
        assert!(matches!(
            Json::parse(&nested(MAX_DEPTH + 1)),
            Err(JsonError::TooDeep { .. })
        ));
    }

    #[test]
    fn huge_numbers_are_rejected_not_infinite() {
        for bad in ["1e999", "-1e999", "1e99999999"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Large but finite stays accepted.
        assert!(Json::parse("1e308").is_ok());
    }
}
