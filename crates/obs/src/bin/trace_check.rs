//! `nvp-trace-check`: validate a trace file produced by `nvp ... --trace-out`
//! or a flight-recorder dump produced by `nvp serve --flight-dir`.
//!
//! ```text
//! nvp-trace-check FILE [--format jsonl|chrome] [--require SPAN]...
//!                      [--min-spans N] [--min-threads N]
//!                      [--flight] [--link CHILD=PARENT]...
//! ```
//!
//! Exits 0 when the file passes the schema check (and, for JSONL, contains
//! every `--require`d span name); prints the failure and exits 1 otherwise.
//! `--flight` insists the file is a flight-recorder dump (its meta line
//! carries the dump context; dangling references to evicted spans are
//! legal — the checker detects this automatically, the flag makes it an
//! assertion). `--link job.run=http.request` enforces cross-thread
//! causality: every `job.run` span must link to an `http.request` span.
//! CI runs this against real `nvp sweep --trace-out` output and against
//! the dumps the serve drills produce.

use std::process::ExitCode;

use nvp_obs::schema;

fn fail(message: &str) -> ExitCode {
    eprintln!("nvp-trace-check: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut format = "jsonl".to_owned();
    let mut required: Vec<String> = Vec::new();
    let mut min_spans: usize = 1;
    let mut min_threads: usize = 1;
    let mut expect_flight = false;
    let mut links: Vec<(String, String)> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "jsonl" || f == "chrome" => format = f,
                Some(f) => return fail(&format!("unknown format {f:?}")),
                None => return fail("--format needs a value"),
            },
            "--require" => match it.next() {
                Some(name) => required.push(name),
                None => return fail("--require needs a span name"),
            },
            "--min-spans" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_spans = n,
                None => return fail("--min-spans needs an integer"),
            },
            "--min-threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_threads = n,
                None => return fail("--min-threads needs an integer"),
            },
            "--flight" => expect_flight = true,
            "--link" => match it.next() {
                Some(rule) => match rule.split_once('=') {
                    Some((child, parent)) if !child.is_empty() && !parent.is_empty() => {
                        links.push((child.to_owned(), parent.to_owned()));
                    }
                    _ => return fail("--link needs CHILD=PARENT span names"),
                },
                None => return fail("--link needs CHILD=PARENT span names"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: nvp-trace-check FILE [--format jsonl|chrome] \
                     [--require SPAN]... [--min-spans N] [--min-threads N] \
                     [--flight] [--link CHILD=PARENT]..."
                );
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(arg),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }

    let Some(path) = file else {
        return fail("missing trace file argument (see --help)");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };

    if format == "chrome" {
        match schema::check_chrome(&text) {
            Ok(entries) => {
                println!("{path}: valid chrome trace, {entries} entries");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("{path}: {e}")),
        }
    } else {
        let summary = match schema::check_jsonl(&text) {
            Ok(s) => s,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if expect_flight && !summary.flight {
            return fail(&format!(
                "{path}: expected a flight-recorder dump, got a plain trace"
            ));
        }
        if summary.spans < min_spans {
            return fail(&format!(
                "{path}: {} span(s), expected at least {min_spans}",
                summary.spans
            ));
        }
        if summary.threads < min_threads {
            return fail(&format!(
                "{path}: {} thread(s), expected at least {min_threads}",
                summary.threads
            ));
        }
        for name in &required {
            if !summary.span_names.contains_key(name) {
                let have: Vec<&str> = summary.span_names.keys().map(String::as_str).collect();
                return fail(&format!(
                    "{path}: required span {name:?} absent (present: {})",
                    have.join(", ")
                ));
            }
        }
        let mut linked = 0;
        for (child, parent) in &links {
            match schema::check_link_rule(&summary, child, parent) {
                Ok(n) => linked += n,
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        }
        let names: Vec<String> = summary
            .span_names
            .iter()
            .map(|(name, count)| format!("{name}×{count}"))
            .collect();
        let kind = if summary.flight {
            "valid flight dump"
        } else {
            "valid trace"
        };
        let link_note = if links.is_empty() {
            String::new()
        } else {
            format!(", {linked} linked span(s) checked")
        };
        println!(
            "{path}: {kind}, {} span(s) / {} event(s) on {} thread(s){link_note}: {}",
            summary.spans,
            summary.events,
            summary.threads,
            names.join(", ")
        );
        ExitCode::SUCCESS
    }
}
