//! Process-wide stderr diagnostics sink.
//!
//! All diagnostic output (degraded-result warnings, progress lines, fatal
//! errors) funnels through one lock so lines never interleave with each
//! other, and every line is assembled in full before a single `write_all`,
//! so it cannot shear against stdout CSV when a CI system merges the two
//! streams. `--quiet` flips a global flag that suppresses warnings and
//! progress but never errors.

use std::io::{self, IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Suppress warnings and progress output (errors still print).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

struct StderrState {
    /// Whether an unterminated progress line is currently displayed, and
    /// must be erased before the next full diagnostic line.
    progress_line_active: bool,
}

fn state() -> MutexGuard<'static, StderrState> {
    static STATE: OnceLock<Mutex<StderrState>> = OnceLock::new();
    let lock = STATE.get_or_init(|| {
        Mutex::new(StderrState {
            progress_line_active: false,
        })
    });
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// True when stderr is a terminal (progress rendering is gated on this).
pub fn stderr_is_terminal() -> bool {
    io::stderr().is_terminal()
}

fn write_line(prefix: &str, message: &str) {
    let mut guard = state();
    let mut line = String::with_capacity(prefix.len() + message.len() + 8);
    if guard.progress_line_active {
        // Erase the in-place progress line so the diagnostic starts at
        // column zero on a clean row.
        line.push_str("\r\x1b[K");
        guard.progress_line_active = false;
    }
    line.push_str(prefix);
    line.push_str(message);
    line.push('\n');
    let _ = io::stderr().write_all(line.as_bytes());
}

/// Emit a `WARNING:`-prefixed diagnostic line (suppressed under quiet).
pub fn warn(message: &str) {
    if quiet() {
        return;
    }
    write_line("WARNING: ", message);
}

/// Emit a plain diagnostic line (suppressed under quiet).
pub fn note(message: &str) {
    if quiet() {
        return;
    }
    write_line("", message);
}

/// Emit an error line. Never suppressed.
pub fn error(message: &str) {
    write_line("", message);
}

/// Emit a server diagnostic line tagged with a request id, e.g.
/// `[req-42] POST /v1/sweep -> 202`. Never suppressed: the daemon runs with
/// the sink quiet so per-point solver warnings from concurrent jobs cannot
/// interleave, and this is the one channel its own diagnostics use. Goes
/// through the same lock as every other line, so concurrent handlers cannot
/// shear each other's output.
pub fn server(request_id: &str, message: &str) {
    let mut prefix = String::with_capacity(request_id.len() + 3);
    prefix.push('[');
    prefix.push_str(request_id);
    prefix.push_str("] ");
    write_line(&prefix, message);
}

/// Replace the current in-place progress line (no trailing newline). The
/// caller is responsible for rate limiting and TTY gating.
pub(crate) fn progress_line(message: &str) {
    let mut guard = state();
    // \r returns to column zero, \x1b[K clears any longer previous line.
    let line = format!("\r{message}\x1b[K");
    guard.progress_line_active = true;
    let _ = io::stderr().write_all(line.as_bytes());
    let _ = io::stderr().flush();
}

/// Terminate an active progress line with a newline, if one is displayed.
pub(crate) fn progress_done() {
    let mut guard = state();
    if guard.progress_line_active {
        guard.progress_line_active = false;
        let _ = io::stderr().write_all(b"\n");
    }
}
