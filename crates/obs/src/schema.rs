//! Schema validation for trace exports.
//!
//! [`check_jsonl`] parses every line of a JSONL trace with the hand-rolled
//! [`crate::json`] parser and enforces the structural invariants the
//! exporter guarantees: a leading meta line, required fields with the right
//! types, unique span ids, parent links that resolve to an enclosing span
//! on the same thread, cross-thread `link` references that point at a span
//! which started first, and proper nesting (two spans on one thread are
//! either disjoint or one contains the other). Flight-recorder dumps
//! (detected by the `"flight"` object on the meta line) relax exactly one
//! rule: a `parent` or `link` may reference a span the ring has already
//! evicted. [`check_chrome`] validates that a chrome export is one
//! well-formed JSON array of trace-event objects. Both are used by the
//! crate's tests and the `nvp-trace-check` binary CI runs against real
//! sweep traces and postmortem dumps.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::trace::JSONL_VERSION;

/// Per-span facts retained for cross-span rules ([`check_link_rule`]) and
/// for callers that need to find a specific span (tests grepping a dump
/// for the triggering request).
#[derive(Debug, Clone)]
pub struct SpanInfo {
    pub id: u64,
    pub name: String,
    pub tid: u64,
    pub link: Option<u64>,
}

/// Summary of a validated JSONL trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    pub spans: usize,
    pub events: usize,
    pub threads: usize,
    /// True when the meta line carries a `"flight"` object, i.e. the
    /// document is a flight-recorder dump rather than a full trace.
    pub flight: bool,
    pub span_names: BTreeMap<String, usize>,
    pub event_names: BTreeMap<String, usize>,
    /// One entry per span, in document order.
    pub span_info: Vec<SpanInfo>,
}

struct SpanRow {
    id: u64,
    parent: Option<u64>,
    link: Option<u64>,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    line: usize,
}

fn field<'a>(obj: &'a Json, key: &str, line: usize) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("line {line}: missing field {key:?}"))
}

fn u64_field(obj: &Json, key: &str, line: usize) -> Result<u64, String> {
    field(obj, key, line)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field {key:?} is not a non-negative integer"))
}

fn opt_u64_field(obj: &Json, key: &str, line: usize) -> Result<Option<u64>, String> {
    let v = field(obj, key, line)?;
    if v.is_null() {
        return Ok(None);
    }
    v.as_u64()
        .map(Some)
        .ok_or_else(|| format!("line {line}: field {key:?} is neither null nor an integer"))
}

fn name_field(obj: &Json, line: usize) -> Result<String, String> {
    let name = field(obj, "name", line)?
        .as_str()
        .ok_or_else(|| format!("line {line}: field \"name\" is not a string"))?;
    if name.is_empty() {
        return Err(format!("line {line}: empty span/event name"));
    }
    Ok(name.to_owned())
}

fn attrs_field(obj: &Json, line: usize) -> Result<(), String> {
    match field(obj, "attrs", line)? {
        Json::Obj(_) => Ok(()),
        _ => Err(format!("line {line}: field \"attrs\" is not an object")),
    }
}

/// Validate a JSONL trace document; returns a summary on success.
pub fn check_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines
        .next()
        .ok_or_else(|| "empty trace: missing meta line".to_owned())?;
    let meta = Json::parse(meta_line).map_err(|e| format!("line 1: {e}"))?;
    if meta.get("type").and_then(Json::as_str) != Some("meta") {
        return Err("line 1: first line must be the meta record".to_owned());
    }
    let version = u64_field(&meta, "version", 1)?;
    if version != JSONL_VERSION {
        return Err(format!(
            "unsupported trace version {version} (expected {JSONL_VERSION})"
        ));
    }
    // A flight-recorder dump announces itself with a "flight" object; its
    // ring evicts oldest-first, so referenced spans may be gone.
    let flight = match meta.get("flight") {
        None => false,
        Some(Json::Obj(_)) => {
            let flight = meta.get("flight").unwrap();
            for key in ["trigger", "state"] {
                if flight.get(key).and_then(Json::as_str).is_none() {
                    return Err(format!("line 1: flight meta missing string field {key:?}"));
                }
            }
            true
        }
        Some(_) => return Err("line 1: field \"flight\" is not an object".to_owned()),
    };

    let mut summary = TraceSummary {
        flight,
        ..TraceSummary::default()
    };
    let mut spans: Vec<SpanRow> = Vec::new();
    let mut events: Vec<(Option<u64>, u64, u64, usize)> = Vec::new(); // (parent, tid, ts, line)
    let mut ids: BTreeMap<u64, usize> = BTreeMap::new(); // span id -> index in `spans`
    let mut tids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();

    for (idx, line_text) in lines {
        let line = idx + 1;
        if line_text.trim().is_empty() {
            return Err(format!("line {line}: blank line inside trace"));
        }
        let obj = Json::parse(line_text).map_err(|e| format!("line {line}: {e}"))?;
        let kind = field(&obj, "type", line)?
            .as_str()
            .ok_or_else(|| format!("line {line}: field \"type\" is not a string"))?
            .to_owned();
        match kind.as_str() {
            "span" => {
                let name = name_field(&obj, line)?;
                let id = u64_field(&obj, "id", line)?;
                if id == 0 {
                    return Err(format!("line {line}: span id 0 is reserved"));
                }
                let parent = opt_u64_field(&obj, "parent", line)?;
                // Optional cross-thread causal parent; absent on most spans.
                let link = match obj.get("link") {
                    None => None,
                    Some(v) if v.is_null() => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        format!("line {line}: field \"link\" is neither null nor an integer")
                    })?),
                };
                let tid = u64_field(&obj, "tid", line)?;
                let start_ns = u64_field(&obj, "start_ns", line)?;
                let end_ns = u64_field(&obj, "end_ns", line)?;
                attrs_field(&obj, line)?;
                if end_ns < start_ns {
                    return Err(format!("line {line}: span ends before it starts"));
                }
                if link == Some(id) {
                    return Err(format!("line {line}: span {id} links to itself"));
                }
                if ids.insert(id, spans.len()).is_some() {
                    return Err(format!("line {line}: duplicate span id {id}"));
                }
                tids.insert(tid);
                *summary.span_names.entry(name.clone()).or_insert(0) += 1;
                summary.span_info.push(SpanInfo {
                    id,
                    name,
                    tid,
                    link,
                });
                spans.push(SpanRow {
                    id,
                    parent,
                    link,
                    tid,
                    start_ns,
                    end_ns,
                    line,
                });
            }
            "event" => {
                let name = name_field(&obj, line)?;
                let parent = opt_u64_field(&obj, "parent", line)?;
                let tid = u64_field(&obj, "tid", line)?;
                let ts_ns = u64_field(&obj, "ts_ns", line)?;
                attrs_field(&obj, line)?;
                tids.insert(tid);
                *summary.event_names.entry(name).or_insert(0) += 1;
                events.push((parent, tid, ts_ns, line));
            }
            "meta" => return Err(format!("line {line}: duplicate meta record")),
            other => return Err(format!("line {line}: unknown record type {other:?}")),
        }
    }

    // Parent links resolve to a span on the same thread whose interval
    // contains the child. In a flight dump the parent may be evicted; when
    // it *is* present, the invariants hold as in a full trace.
    for span in &spans {
        if let Some(pid) = span.parent {
            let Some(&pidx) = ids.get(&pid) else {
                if flight {
                    continue;
                }
                return Err(format!(
                    "line {}: parent span {pid} not found in trace",
                    span.line
                ));
            };
            let parent = &spans[pidx];
            if parent.tid != span.tid {
                return Err(format!(
                    "line {}: parent span {pid} is on thread {} but child is on {}",
                    span.line, parent.tid, span.tid
                ));
            }
            if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
                return Err(format!(
                    "line {}: span {} [{}, {}] escapes parent {pid} [{}, {}]",
                    span.line, span.id, span.start_ns, span.end_ns, parent.start_ns, parent.end_ns
                ));
            }
        }
        // Cross-thread links carry causality, not containment: the linked
        // span merely has to exist (unless evicted from a flight ring) and
        // to have started no later than the work it caused.
        if let Some(lid) = span.link {
            let Some(&lidx) = ids.get(&lid) else {
                if flight {
                    continue;
                }
                return Err(format!(
                    "line {}: linked span {lid} not found in trace",
                    span.line
                ));
            };
            let linked = &spans[lidx];
            if span.start_ns < linked.start_ns {
                return Err(format!(
                    "line {}: span {} starts at {} before its linked cause {lid} at {}",
                    span.line, span.id, span.start_ns, linked.start_ns
                ));
            }
        }
    }
    for (parent, tid, ts_ns, line) in &events {
        if let Some(pid) = parent {
            let Some(&pidx) = ids.get(pid) else {
                if flight {
                    continue;
                }
                return Err(format!("line {line}: parent span {pid} not found in trace"));
            };
            let parent_span = &spans[pidx];
            if parent_span.tid != *tid {
                return Err(format!(
                    "line {line}: event thread {tid} does not match parent span thread {}",
                    parent_span.tid
                ));
            }
            if *ts_ns < parent_span.start_ns || *ts_ns > parent_span.end_ns {
                return Err(format!(
                    "line {line}: event at {ts_ns} outside parent span [{}, {}]",
                    parent_span.start_ns, parent_span.end_ns
                ));
            }
        }
    }

    // Spans on one thread must be properly nested: any two either do not
    // intersect or one contains the other.
    let mut by_tid: BTreeMap<u64, Vec<&SpanRow>> = BTreeMap::new();
    for span in &spans {
        by_tid.entry(span.tid).or_default().push(span);
    }
    for rows in by_tid.values_mut() {
        rows.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.end_ns)));
        // With spans sorted by (start asc, end desc), a stack walk detects
        // partial overlap: each span must fit inside the innermost open one.
        let mut open: Vec<&SpanRow> = Vec::new();
        for span in rows.iter() {
            while let Some(top) = open.last() {
                // A span that ended at or before this one's start is a
                // closed sibling (a shared boundary instant is not overlap).
                if top.end_ns <= span.start_ns {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                if span.end_ns > top.end_ns {
                    return Err(format!(
                        "line {}: span {} [{}, {}] partially overlaps span {} [{}, {}] on thread {}",
                        span.line,
                        span.id,
                        span.start_ns,
                        span.end_ns,
                        top.id,
                        top.start_ns,
                        top.end_ns,
                        span.tid
                    ));
                }
            }
            open.push(span);
        }
    }

    summary.spans = spans.len();
    summary.events = events.len();
    summary.threads = tids.len();
    Ok(summary)
}

/// Enforce a cross-thread linkage rule over a validated trace: every span
/// named `child` must carry a `link`, and wherever the linked span is
/// present in the document it must be named `parent`. In a flight dump the
/// linked span may have been evicted (the link id still has to be there);
/// in a full trace it must resolve — [`check_jsonl`] has already
/// guaranteed that, so here the remaining question is its *name*.
///
/// Returns the number of `child` spans checked (zero is not an error: a
/// drain dump taken before any job ran has nothing to link).
pub fn check_link_rule(summary: &TraceSummary, child: &str, parent: &str) -> Result<usize, String> {
    let by_id: BTreeMap<u64, &SpanInfo> = summary.span_info.iter().map(|s| (s.id, s)).collect();
    let mut checked = 0;
    for span in summary.span_info.iter().filter(|s| s.name == child) {
        let Some(link) = span.link else {
            return Err(format!(
                "span {} ({child:?}) has no cross-thread link; expected a {parent:?} cause",
                span.id
            ));
        };
        match by_id.get(&link) {
            Some(target) if target.name != parent => {
                return Err(format!(
                    "span {} ({child:?}) links to span {} ({:?}); expected {parent:?}",
                    span.id, target.id, target.name
                ));
            }
            Some(_) => {}
            None if summary.flight => {}
            None => {
                return Err(format!(
                    "span {} ({child:?}) links to unknown span {link}",
                    span.id
                ));
            }
        }
        checked += 1;
    }
    Ok(checked)
}

/// Validate a chrome://tracing export: a single JSON array whose entries
/// are objects with the fields the trace-event format requires. Returns the
/// number of entries.
pub fn check_chrome(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let Json::Arr(entries) = doc else {
        return Err("chrome trace is not a JSON array".to_owned());
    };
    for (i, entry) in entries.iter().enumerate() {
        let Json::Obj(_) = entry else {
            return Err(format!("entry {i}: not an object"));
        };
        let ph = entry
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing phase \"ph\""))?;
        if !matches!(ph, "X" | "i") {
            return Err(format!("entry {i}: unexpected phase {ph:?}"));
        }
        for key in ["name", "pid", "tid", "ts"] {
            if entry.get(key).is_none() {
                return Err(format!("entry {i}: missing field {key:?}"));
            }
        }
        if entry.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("entry {i}: field \"ts\" is not a number"));
        }
        if ph == "X" && entry.get("dur").and_then(Json::as_f64).is_none() {
            return Err(format!("entry {i}: duration event missing \"dur\""));
        }
    }
    Ok(entries.len())
}
