//! Live sweep progress: completed/total points, throughput, ETA, and
//! degraded/retried counts, rendered in place on stderr.
//!
//! Updates are rate-limited (at most one repaint per 100 ms, except the
//! final point) and the reporter disables itself entirely when stderr is
//! not a terminal or the sink is quiet, so batch runs and CI logs see no
//! control characters.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::sink;

const MIN_REPAINT_INTERVAL: Duration = Duration::from_millis(100);

struct ProgressState {
    completed: usize,
    degraded: u64,
    retried: u64,
    last_repaint: Option<Instant>,
}

/// Progress reporter for one sweep. Thread-safe: the per-point observer may
/// fire from any worker.
pub struct SweepProgress {
    total: usize,
    started: Instant,
    enabled: bool,
    state: Mutex<ProgressState>,
}

impl SweepProgress {
    /// Reporter gated on stderr being a TTY and the sink not being quiet.
    pub fn new(total: usize) -> Self {
        Self::with_enabled(total, sink::stderr_is_terminal() && !sink::quiet())
    }

    /// Explicitly enabled/disabled reporter (tests and benchmarks).
    pub fn with_enabled(total: usize, enabled: bool) -> Self {
        Self {
            total,
            started: Instant::now(),
            enabled,
            state: Mutex::new(ProgressState {
                completed: 0,
                degraded: 0,
                retried: 0,
                last_repaint: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProgressState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record a finished point. `degraded` marks a fallback/replayed-degraded
    /// result; `retried_total` is the cumulative retry count for this sweep
    /// (a monotone counter, not a per-point delta).
    pub fn point_done(&self, degraded: bool, retried_total: u64) {
        let mut state = self.lock();
        state.completed += 1;
        if degraded {
            state.degraded += 1;
        }
        state.retried = retried_total;
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = state
            .last_repaint
            .is_none_or(|last| now.duration_since(last) >= MIN_REPAINT_INTERVAL)
            || state.completed >= self.total;
        if !due {
            return;
        }
        state.last_repaint = Some(now);
        let line = render_line(
            state.completed,
            self.total,
            self.started.elapsed(),
            state.degraded,
            state.retried,
        );
        drop(state);
        sink::progress_line(&line);
    }

    /// Record `n` points replayed from a resume journal (counted as
    /// completed without affecting throughput-derived ETA much: the elapsed
    /// clock started with this run).
    pub fn points_replayed(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut state = self.lock();
        state.completed += n;
        if !self.enabled {
            return;
        }
        state.last_repaint = Some(Instant::now());
        let line = render_line(
            state.completed,
            self.total,
            self.started.elapsed(),
            state.degraded,
            state.retried,
        );
        drop(state);
        sink::progress_line(&line);
    }

    /// Finish the progress display (prints the terminating newline if an
    /// in-place line is active).
    pub fn finish(&self) {
        if self.enabled {
            sink::progress_done();
        }
    }
}

/// Pure formatting for one progress line; separated out so tests can assert
/// on it without a terminal.
pub fn render_line(
    completed: usize,
    total: usize,
    elapsed: Duration,
    degraded: u64,
    retried: u64,
) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        completed as f64 / secs
    } else {
        0.0
    };
    let eta = if rate > 0.0 && completed < total {
        let remaining = (total - completed) as f64 / rate;
        format_eta(remaining)
    } else if completed >= total {
        "done".to_owned()
    } else {
        "--".to_owned()
    };
    let mut line = format!("sweep {completed}/{total} points ({rate:.1} pts/s, ETA {eta})");
    if degraded > 0 {
        line.push_str(&format!(", {degraded} degraded"));
    }
    if retried > 0 {
        line.push_str(&format!(", {retried} retried"));
    }
    line
}

fn format_eta(seconds: f64) -> String {
    let s = seconds.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_includes_counts_rate_and_eta() {
        let line = render_line(5, 20, Duration::from_secs(10), 0, 0);
        assert_eq!(line, "sweep 5/20 points (0.5 pts/s, ETA 30s)");
    }

    #[test]
    fn render_line_appends_degraded_and_retried() {
        let line = render_line(20, 20, Duration::from_secs(4), 2, 7);
        assert!(line.starts_with("sweep 20/20 points ("));
        assert!(line.contains("ETA done"));
        assert!(line.ends_with(", 2 degraded, 7 retried"), "{line}");
    }

    #[test]
    fn render_line_handles_zero_elapsed() {
        let line = render_line(0, 10, Duration::ZERO, 0, 0);
        assert!(line.contains("ETA --"), "{line}");
    }

    #[test]
    fn eta_formats_scale() {
        assert_eq!(format_eta(42.4), "42s");
        assert_eq!(format_eta(90.0), "1m30s");
        assert_eq!(format_eta(3721.0), "1h02m");
    }

    #[test]
    fn disabled_reporter_counts_without_rendering() {
        let p = SweepProgress::with_enabled(3, false);
        p.point_done(true, 1);
        p.point_done(false, 1);
        p.points_replayed(1);
        p.finish();
        let state = p.lock();
        assert_eq!(state.completed, 3);
        assert_eq!(state.degraded, 1);
        assert_eq!(state.retried, 1);
    }
}
